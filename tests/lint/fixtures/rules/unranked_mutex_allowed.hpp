// Fixture: a reasoned leaf-lock suppression.
// expect: clean
#pragma once
struct Profiler {
  // lint: allow(unranked-mutex) leaf lock under the profiler itself
  Spinlock intern_lock_;
};
