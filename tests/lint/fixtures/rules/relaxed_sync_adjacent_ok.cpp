// Fixture: the gate-then-CAS idiom with the CAS wrapped over multiple
// physical lines AND separated from the gate by a long comment. The old
// 4-line window missed the acquire; statement-level adjacency finds it.
// expect: clean
#include <atomic>
std::atomic<bool> locked{false};
bool try_acquire() {
  if (locked.load(std::memory_order_relaxed)) return false;
  // A comment block long enough that a fixed line window centred on the
  // gate above would no longer contain the exchange below. Statement
  // grouping skips comment lines entirely, so the CAS statement is still
  // the gate's immediate successor and counts as the adjacent acquire
  // the rule demands.
  bool expected = false;
  return locked.compare_exchange_strong(expected, true,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
}
