// Fixture: an allow with no reason is itself a hard failure, and it does
// NOT suppress the finding it names.
// expect: allow-without-reason @ 7
// expect: bare-lock @ 8
struct L { void lock(); void unlock(); };
L mu;
void f() {  // lint: allow(bare-lock)
  mu.lock();
}
