// Fixture: reasoned suppression of a relaxed gate.
// expect: clean
#include <atomic>
std::atomic<bool> enabled{false};
int fast_path() {
  // lint: allow(relaxed-sync) pure on/off gate, no data published across it
  if (enabled.load(std::memory_order_relaxed)) return 1;
  return 0;
}
