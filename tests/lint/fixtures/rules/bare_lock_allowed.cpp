// Fixture: a bare lock with a reasoned allow is suppressed.
// expect: clean
struct L { void lock(); void unlock(); };
L mu;
void helper() {
  // lint: allow(bare-lock) fixture demonstrating a reasoned suppression
  mu.lock();
}
