// Fixture: relaxed load gating a branch, no acquire anywhere near.
// expect: relaxed-sync @ 7
#include <atomic>
std::atomic<bool> ready{false};
int payload;
int consume() {
  if (ready.load(std::memory_order_relaxed)) {
    return payload;
  }
  return -1;
}
