// Fixture: the timed-acquire idiom — a bare lock() immediately adopted by
// a LockGuard is the sanctioned exception (both adopt_lock spellings).
// expect: clean
struct L { void lock(); bool try_lock(); void unlock(); };
struct AdoptTag {};
inline constexpr AdoptTag adopt_lock{};
template <typename T> struct LockGuard {
  LockGuard(T& l);
  LockGuard(T& l, AdoptTag);
  ~LockGuard();
};
L mu;
void timed() {
  if (!mu.try_lock()) {
    mu.lock();
  }
  LockGuard adopt(mu, adopt_lock);
}
