// Fixture: raw mutex members invisible to the lock-rank validator.
// expect: unranked-mutex @ 6
// expect: unranked-mutex @ 7
#pragma once
struct Engine {
  Spinlock lock_;
  std::mutex fallback_;
};
