// Fixture: two SAME-RANK locks acquired in both orders. Rank monotonicity
// tolerates equal ranks, so only the cycle check can catch this — which is
// exactly what it exists for.
#include "fairmpi/debug/lockcheck.hpp"
namespace fixture {
enum class LockRank : int {
  kPeer = 10,
};
struct Pair {
  RankedLock<Spinlock> a{LockRank::kPeer, "fix.a"};
  RankedLock<Spinlock> b{LockRank::kPeer, "fix.b"};
};
void forward(Pair& p) {
  LockGuard one(p.a);
  LockGuard two(p.b);
}
void backward(Pair& p) {
  LockGuard one(p.b);
  LockGuard two(p.a);
}
}  // namespace fixture
