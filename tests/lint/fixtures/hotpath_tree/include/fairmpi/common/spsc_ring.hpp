// Fixture tree: poses as a PR-7 hot-path primitive
// (include/fairmpi/common/spsc_ring.hpp) so the path keys added for the
// lock-free injection path fire. Scanned with --root at the fixture tree.
// expect: hotpath-alloc @ 8
// expect: no-tsa-hotpath @ 11
struct FakeLane {
  void grow() {
    slots = new int[64];
  }
  // A lane op opted out of the analysis must be reported, not ignored.
  void drain() FAIRMPI_NO_TSA;
  FakeLane() {
    // lint: allow(hotpath-alloc) fixture: annotated ctor allocation survives
    slots = new int[8];
  }
  int* slots = nullptr;
};
