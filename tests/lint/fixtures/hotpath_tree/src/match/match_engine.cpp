// Fixture tree: poses as a hot-path file (src/match/match_engine.cpp) so
// the path-keyed rules fire. Scanned with --root at the fixture tree.
// expect: hotpath-alloc @ 6
// expect: no-tsa-hotpath @ 9
void grow() {
  int* spill = new int[64];
  (void)spill;
}
void opted_out() FAIRMPI_NO_TSA;
void cold_setup() {
  // lint: allow(hotpath-alloc) fixture: annotated one-time setup survives
  int* table = new int[8];
  (void)table;
}
