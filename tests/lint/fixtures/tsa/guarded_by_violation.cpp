// Seeding-proof fixture for the tsa CI gate: this file is NOT part of any
// CMake target. The CI job compiles it with
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// and FAILS the build if it compiles cleanly — proving the annotation
// macros are live, not vacuous no-ops.
#include "fairmpi/debug/thread_safety.hpp"

class FAIRMPI_CAPABILITY("mutex") FixtureLock {
 public:
  void lock() FAIRMPI_ACQUIRE() {}
  void unlock() FAIRMPI_RELEASE() {}
};

struct Counter {
  FixtureLock mu;
  int value FAIRMPI_GUARDED_BY(mu) = 0;
};

// Reads guarded state without holding the lock: under a TSA-capable
// compiler this is a -Wthread-safety error (the point of the fixture).
int read_unlocked(Counter& c) { return c.value; }
