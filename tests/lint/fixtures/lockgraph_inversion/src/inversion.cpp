// Fixture: a single blocking acquisition against declared rank order —
// no cycle (only one nesting direction exists), so only the rank
// monotonicity check can catch it.
#include "fairmpi/debug/lockcheck.hpp"
namespace fixture {
enum class LockRank : int {
  kInner = 10,
  kOuter = 20,
};
struct State {
  RankedLock<Spinlock> inner{LockRank::kInner, "fix.inner"};
  RankedLock<Spinlock> outer{LockRank::kOuter, "fix.outer"};
};
void inverted(State& s) {
  LockGuard hi(s.outer);
  LockGuard lo(s.inner);
}
}  // namespace fixture
