// Overload control & graceful degradation tests (DESIGN.md §5h): bounded
// admission (kShed with receiver NACKs, kQueue with sender backpressure),
// sender-side pool/tracker caps, request cancellation, per-op deadlines,
// the degradation ladder, quiesce timeout diagnostics, and the
// observability surface.
//
// Every blocking drive is wall-clock bounded, so a regression that
// reintroduces a hang fails the test instead of wedging the suite. Suite
// names (Overload/Cancel/Deadline) are load-bearing: the CI tsan job
// selects these tests by that regex.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/common/timing.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/fabric/wire.hpp"

namespace fairmpi {
namespace {

using common::Error;
using common::ErrorCode;
using spc::Counter;

/// Drive the given ranks' progress loops until `pred` holds; false on a
/// 5 s wall-clock timeout (the no-hang guard every test here leans on).
template <typename Pred>
bool drive(Universe& uni, const std::vector<int>& ranks, Pred pred) {
  const std::uint64_t deadline = now_ns() + 5'000'000'000ULL;
  while (!pred()) {
    for (const int r : ranks) uni.rank(r).progress();
    if (now_ns() > deadline) return false;
  }
  return true;
}

struct ErrorCapture {
  std::vector<Error> errors;
  Spinlock lock;
  static void sink(const Error& err, void* user) {
    auto* self = static_cast<ErrorCapture*>(user);
    LockGuard guard(self->lock);
    self->errors.push_back(err);
  }
  std::size_t count(ErrorCode code) {
    LockGuard guard(lock);
    std::size_t n = 0;
    for (const Error& e : errors) {
      if (e.code == code) ++n;
    }
    return n;
  }
  bool saw(ErrorCode code) { return count(code) != 0; }
};

// --- bounded admission: kShed (receiver drops + NACKs) ---

TEST(Overload, ShedFloodExactAccounting) {
  // One producer floods a consumer that posts nothing: the first `cap`
  // messages park as unexpected, every later one is shed and NACKed. The
  // flood must stay fully accounted: admitted + shed == sent, every shed
  // surfaced typed kReceiverOverloaded at the sender, and the ladder must
  // come back down after the drain.
  constexpr std::size_t kCap = 8;
  constexpr int kSent = 64;
  Config cfg;
  cfg.reliable = true;  // NACKs need the reliability tracker
  cfg.unexpected_cap = kCap;
  cfg.unexpected_policy = overload::Policy::kShed;
  // Slow retransmit clock: a pristine fabric needs none, and an early
  // retransmit racing its own NACK would only add (correct but noisy)
  // shed-duplicate traffic to the accounting below.
  cfg.rto_ns = 2'000'000'000ULL;
  cfg.rto_max_ns = 4'000'000'000ULL;
  Universe uni(cfg);
  ErrorCapture sender_errors;
  uni.rank(0).set_error_sink(ErrorCapture::sink, &sender_errors);

  std::atomic<bool> sent_all{false};
  std::thread producer([&] {
    char byte = 'x';
    for (int i = 0; i < kSent; ++i) {
      Request req;
      uni.rank(0).isend(kWorldComm, 1, /*tag=*/5, &byte, 1, req);
      uni.rank(0).wait(req);  // eager: completes at injection
    }
    sent_all.store(true, std::memory_order_release);
  });
  // Consumer progresses (so it sheds + NACKs) but posts no receives until
  // the flood is over and every sender-side tracker entry is settled.
  ASSERT_TRUE(drive(uni, {0, 1}, [&] {
    return sent_all.load(std::memory_order_acquire) &&
           sender_errors.count(ErrorCode::kReceiverOverloaded) ==
               kSent - kCap;
  }));
  producer.join();

  auto& match = uni.rank(1).comm_state(kWorldComm).match();
  EXPECT_EQ(match.unexpected_count(), kCap);
  const auto consumer = uni.rank(1).counters().snapshot();
  EXPECT_EQ(consumer.get(Counter::kOverloadShedMessages), kSent - kCap);
  EXPECT_EQ(consumer.get(Counter::kOverloadNacksSent), kSent - kCap);
  // The ladder sees the still-full queue (pressure 100%). Sampling is
  // throttled to 1-in-64 progress visits, so spin the consumer through a
  // sampling window before asserting.
  {
    const std::uint64_t until = now_ns() + 5'000'000'000ULL;
    while (uni.rank(1).governor().level() == overload::Level::kHealthy &&
           now_ns() < until) {
      uni.rank(1).progress();
    }
  }
  EXPECT_NE(uni.rank(1).governor().level(), overload::Level::kHealthy);

  // Drain: exactly the admitted messages are deliverable.
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < kCap; ++i) {
    Request req;
    char got = 0;
    uni.rank(1).irecv(kWorldComm, 0, 5, &got, 1, req);
    ASSERT_TRUE(drive(uni, {0, 1}, [&] { return req.done(); }));
    if (!req.failed()) ++delivered;
  }
  EXPECT_EQ(delivered, kCap);
  // Exact accounting: Σ admitted + Σ shed == Σ sent.
  const auto after = uni.rank(1).counters().snapshot();
  EXPECT_EQ(after.get(Counter::kMessagesReceived) +
                after.get(Counter::kOverloadShedMessages),
            static_cast<std::uint64_t>(kSent));
  // Hysteresis: with the queue drained the ladder returns to kHealthy
  // (sampling is throttled, so spin the progress loop through a window).
  const std::uint64_t deadline = now_ns() + 5'000'000'000ULL;
  while (uni.rank(1).governor().level() != overload::Level::kHealthy &&
         now_ns() < deadline) {
    uni.rank(1).progress();
  }
  EXPECT_EQ(uni.rank(1).governor().level(), overload::Level::kHealthy);
}

TEST(Overload, ShedMultiProducerPerPeerCap) {
  // 3 producers vs 1 slow consumer (the seeded 4:1 incast): the cap is
  // per-peer, so each producer gets its own admitted quota and its own
  // shed count; the totals must still balance exactly.
  constexpr std::size_t kCap = 4;
  constexpr int kPerProducer = 32;
  Config cfg;
  cfg.num_ranks = 4;
  cfg.reliable = true;
  cfg.unexpected_cap = kCap;
  cfg.unexpected_policy = overload::Policy::kShed;
  cfg.rto_ns = 2'000'000'000ULL;
  cfg.rto_max_ns = 4'000'000'000ULL;
  Universe uni(cfg);
  std::vector<ErrorCapture> errors(3);
  for (int r = 1; r < 4; ++r) {
    uni.rank(r).set_error_sink(ErrorCapture::sink, &errors[r - 1]);
  }

  std::atomic<int> done_producers{0};
  std::vector<std::thread> producers;
  for (int r = 1; r < 4; ++r) {
    producers.emplace_back([&, r] {
      char byte = static_cast<char>('a' + r);
      for (int i = 0; i < kPerProducer; ++i) {
        Request req;
        uni.rank(r).isend(kWorldComm, 0, /*tag=*/9, &byte, 1, req);
        uni.rank(r).wait(req);
      }
      done_producers.fetch_add(1, std::memory_order_release);
    });
  }
  ASSERT_TRUE(drive(uni, {0, 1, 2, 3}, [&] {
    if (done_producers.load(std::memory_order_acquire) != 3) return false;
    std::size_t nacked = 0;
    for (auto& e : errors) nacked += e.count(ErrorCode::kReceiverOverloaded);
    return nacked == 3 * (kPerProducer - kCap);
  }));
  for (auto& t : producers) t.join();

  auto& match = uni.rank(0).comm_state(kWorldComm).match();
  EXPECT_EQ(match.unexpected_count(), 3 * kCap);
  // Every producer was shed the same amount — the cap is per-peer, so one
  // aggressive peer cannot consume another's quota.
  for (auto& e : errors) {
    EXPECT_EQ(e.count(ErrorCode::kReceiverOverloaded), kPerProducer - kCap);
  }
  // Drain everything admitted and balance the books.
  for (std::size_t i = 0; i < 3 * kCap; ++i) {
    Request req;
    char got = 0;
    uni.rank(0).irecv(kWorldComm, kAnySource, 9, &got, 1, req);
    ASSERT_TRUE(drive(uni, {0, 1, 2, 3}, [&] { return req.done(); }));
    EXPECT_FALSE(req.failed());
  }
  const auto snap = uni.rank(0).counters().snapshot();
  EXPECT_EQ(snap.get(Counter::kMessagesReceived) +
                snap.get(Counter::kOverloadShedMessages),
            static_cast<std::uint64_t>(3 * kPerProducer));
}

// --- bounded admission: kQueue (latch + RX trickle backpressure) ---

TEST(Overload, QueuePolicyBoundsQueueWithoutLoss) {
  // kQueue on a reliable fabric must lose nothing AND hard-bound the
  // unexpected queue: at cap the receiver defers admission (answers with
  // neither ack nor NACK, before the sequence stream consumes the packet),
  // so the sender's retransmit clock re-presents it once the slow consumer
  // has drained below the cap. The sampled queue depth must never exceed
  // cap + the reorder-window overshoot (packets parked out-of-sequence
  // were acked at park time and are always admitted when drained).
  constexpr std::size_t kCap = 16;
  constexpr int kSent = 256;
  Config cfg;
  cfg.reliable = true;       // deferred admission leans on the retransmit clock
  cfg.unexpected_cap = kCap;
  cfg.unexpected_policy = overload::Policy::kQueue;
  cfg.rto_ns = 200'000;      // fast retries so deferrals re-present quickly
  cfg.rto_max_ns = 2'000'000;
  cfg.max_retries = 1'000'000;  // deferral is backpressure, not exhaustion
  Universe uni(cfg);

  std::atomic<int> received{0};
  std::atomic<bool> consumer_stuck{false};
  std::size_t max_unexpected = 0;
  std::thread consumer([&] {
    // The slow consumer: reads one message at a time, sampling the queue
    // depth on every progress visit.
    auto& match = uni.rank(1).comm_state(kWorldComm).match();
    for (int i = 0; i < kSent; ++i) {
      Request req;
      char got = 0;
      uni.rank(1).irecv(kWorldComm, 0, /*tag=*/3, &got, 1, req);
      const std::uint64_t deadline = now_ns() + 10'000'000'000ULL;
      while (!req.done() && now_ns() < deadline) {
        uni.rank(1).progress();
        const std::size_t n = match.unexpected_count();
        if (n > max_unexpected) max_unexpected = n;
      }
      if (!req.done() || req.failed()) {
        consumer_stuck.store(true, std::memory_order_release);
        return;
      }
      received.fetch_add(1, std::memory_order_release);
    }
  });
  std::thread producer([&] {
    char byte = 'q';
    for (int i = 0; i < kSent; ++i) {
      Request req;
      uni.rank(0).isend(kWorldComm, 1, /*tag=*/3, &byte, 1, req);
      uni.rank(0).wait(req);
    }
  });
  producer.join();
  // The producer thread is done, but its deferred packets still need the
  // sender-side retransmit sweep: keep driving rank 0 until the consumer
  // has everything.
  const std::uint64_t deadline = now_ns() + 20'000'000'000ULL;
  while (received.load(std::memory_order_acquire) < kSent &&
         !consumer_stuck.load(std::memory_order_acquire) &&
         now_ns() < deadline) {
    uni.rank(0).progress();
  }
  consumer.join();
  ASSERT_FALSE(consumer_stuck.load(std::memory_order_acquire));
  ASSERT_EQ(received.load(std::memory_order_acquire), kSent);

  // Backpressure engaged (the latch fired) and the queue stayed hard-
  // bounded: cap + kReorderWindow overshoot, far below the 256-flood.
  const auto snap = uni.rank(1).counters().snapshot();
  EXPECT_GE(snap.get(Counter::kOverloadPausedPeers), 1u);
  EXPECT_LE(max_unexpected, kCap + 64);
  // Zero loss, zero shed: kQueue never drops.
  EXPECT_EQ(snap.get(Counter::kOverloadShedMessages), 0u);
  EXPECT_EQ(snap.get(Counter::kOverloadNacksSent), 0u);
}

// --- sender-side admission: payload-pool and tracker caps ---

TEST(Overload, PoolCapShedFailsLocalTyped) {
  fabric::reset_payload_pool_high_water();
  Config cfg;
  cfg.payload_pool_cap_bytes = 1;  // any charged payload saturates the cap
  cfg.payload_pool_policy = overload::Policy::kShed;
  Universe uni(cfg);
  // Payloads <= kInlineBytes ride inline in the ring slot and never touch
  // the pool — the cap only sees pooled bytes, so send bigger than that.
  std::vector<char> payload(256, 'p');
  Request first;
  uni.rank(0).isend(kWorldComm, 1, 1, payload.data(), payload.size(), first);
  uni.rank(0).wait(first);
  EXPECT_FALSE(first.failed());  // pool was empty at admission
  Request second;
  uni.rank(0).isend(kWorldComm, 1, 1, payload.data(), payload.size(), second);
  uni.rank(0).wait(second);
  EXPECT_TRUE(second.failed());
  EXPECT_EQ(second.error(), ErrorCode::kLocalOverloaded);
  // Draining the first message releases its payload; sends work again.
  std::vector<char> got(256);
  Request rreq;
  uni.rank(1).irecv(kWorldComm, 0, 1, got.data(), got.size(), rreq);
  ASSERT_TRUE(drive(uni, {0, 1}, [&] { return rreq.done(); }));
  Request third;
  uni.rank(0).isend(kWorldComm, 1, 1, payload.data(), payload.size(), third);
  uni.rank(0).wait(third);
  EXPECT_FALSE(third.failed());
}

TEST(Overload, PoolHighWaterStaysWithinCap) {
  fabric::reset_payload_pool_high_water();
  constexpr std::uint64_t kPoolCap = 8 * 1024;
  Config cfg;
  cfg.payload_pool_cap_bytes = kPoolCap;
  cfg.payload_pool_policy = overload::Policy::kQueue;
  Universe uni(cfg);
  // Consumer preposts everything so the flood drains; the cap + kQueue
  // throttle keeps the pool's high-water bounded the whole way.
  constexpr int kSent = 128;
  std::thread consumer([&] {
    std::vector<char> got(512);
    for (int i = 0; i < kSent; ++i) {
      (void)uni.rank(1).world().recv(0, 2, got.data(), got.size());
    }
  });
  std::vector<char> payload(512, 'm');
  for (int i = 0; i < kSent; ++i) {
    uni.rank(0).world().send(1, 2, payload.data(), payload.size());
  }
  consumer.join();
  // One in-flight packet can overshoot the admission check (charged after
  // the relaxed-load gate passes); allow one pool class of slack.
  EXPECT_LE(fabric::payload_pool_stats().high_water_bytes, kPoolCap + 4096);
}

TEST(Overload, TrackerCapShedFailsLocalTyped) {
  Config cfg;
  cfg.reliable = true;
  cfg.tracker_cap = 2;
  cfg.tracker_policy = overload::Policy::kShed;
  cfg.rto_ns = 2'000'000'000ULL;
  cfg.rto_max_ns = 4'000'000'000ULL;  // no retransmit noise while the peer idles
  Universe uni(cfg);
  char byte = 't';
  Request a, b, c;
  uni.rank(0).isend(kWorldComm, 1, 1, &byte, 1, a);
  uni.rank(0).isend(kWorldComm, 1, 1, &byte, 1, b);
  EXPECT_FALSE(a.failed());
  EXPECT_FALSE(b.failed());
  // Two unacked entries in flight (the peer never progressed): at cap.
  uni.rank(0).isend(kWorldComm, 1, 1, &byte, 1, c);
  uni.rank(0).wait(c);
  EXPECT_TRUE(c.failed());
  EXPECT_EQ(c.error(), ErrorCode::kLocalOverloaded);
  // Let the peer ack; the tracker drains and admission reopens.
  ASSERT_TRUE(drive(uni, {0, 1}, [&] {
    Request probe;
    uni.rank(0).isend(kWorldComm, 1, 1, &byte, 1, probe);
    uni.rank(0).wait(probe);
    return !probe.failed();
  }));
}

// --- request cancellation ---

TEST(Cancel, PostedReceiveSettlesExactlyOnce) {
  Universe uni(Config{});
  Request req;
  char buf = 0;
  uni.rank(1).irecv(kWorldComm, 0, 7, &buf, 1, req);
  EXPECT_TRUE(req.cancel());
  EXPECT_TRUE(req.done());
  EXPECT_EQ(req.error(), ErrorCode::kCancelled);
  EXPECT_FALSE(req.cancel());  // second cancel loses: already settled
  EXPECT_EQ(uni.rank(1).counters().snapshot().get(Counter::kCancelledOps), 1u);
}

TEST(Cancel, CancelVsMatchRaceSettlesExactlyOnce) {
  // Cancel from one thread races an arriving message from another: the
  // request must settle exactly once, as either a clean delivery or a
  // clean kCancelled — never both, never neither.
  Universe uni(Config{});
  for (int iter = 0; iter < 200; ++iter) {
    Request rreq;
    char got = 0;
    const int tag = 100 + iter;  // fresh tag: stale losers park harmlessly
    uni.rank(1).irecv(kWorldComm, 0, tag, &got, 1, rreq);
    std::thread canceller([&] { (void)rreq.cancel(); });
    char byte = 'r';
    Request sreq;
    uni.rank(0).isend(kWorldComm, 1, tag, &byte, 1, sreq);
    ASSERT_TRUE(drive(uni, {0, 1}, [&] { return rreq.done(); }));
    canceller.join();
    ASSERT_TRUE(rreq.error() == ErrorCode::kOk ||
                rreq.error() == ErrorCode::kCancelled)
        << "iter " << iter;
    if (rreq.error() == ErrorCode::kOk) EXPECT_EQ(got, 'r');
  }
}

TEST(Cancel, RendezvousSendCancelVsLateAck) {
  // Cancel a rendezvous send whose RTS the receiver has not matched yet,
  // then let the receiver match it: the late RndvAck must hit the
  // tombstone and be discarded — no fragments stream from the (logically
  // freed) buffer, nothing hangs, and the link still works afterwards.
  Config cfg;
  cfg.eager_limit = 64;  // push a 1 KiB payload onto the rendezvous path
  Universe uni(cfg);
  std::vector<char> payload(1024, 's');
  Request sreq;
  uni.rank(0).isend(kWorldComm, 1, 11, payload.data(), payload.size(), sreq);
  EXPECT_TRUE(sreq.cancel());
  EXPECT_EQ(sreq.error(), ErrorCode::kCancelled);
  EXPECT_EQ(uni.rank(0).counters().snapshot().get(Counter::kCancelledOps), 1u);
  // The receiver now matches the RTS and acks into the tombstone.
  std::vector<char> got(1024);
  Request rreq;
  uni.rank(1).irecv(kWorldComm, 0, 11, got.data(), got.size(), rreq);
  const std::uint64_t until = now_ns() + 50'000'000ULL;
  while (now_ns() < until) {
    uni.rank(0).progress();
    uni.rank(1).progress();
  }
  EXPECT_FALSE(rreq.done());  // data never came — by design
  EXPECT_TRUE(rreq.cancel());
  // The engine is healthy: a fresh eager round-trip completes.
  char ping = 'z', pong = 0;
  Request s2, r2;
  uni.rank(1).irecv(kWorldComm, 0, 12, &pong, 1, r2);
  uni.rank(0).isend(kWorldComm, 1, 12, &ping, 1, s2);
  ASSERT_TRUE(drive(uni, {0, 1}, [&] { return r2.done(); }));
  EXPECT_EQ(pong, 'z');
}

// --- per-operation deadlines ---

TEST(Deadline, PostedReceiveExpiresTyped) {
  Universe uni(Config{});
  Request req;
  char buf = 0;
  uni.rank(1).irecv(kWorldComm, 0, 7, &buf, 1, req, now_ns() + 2'000'000);
  ASSERT_TRUE(drive(uni, {1}, [&] { return req.done(); }));
  EXPECT_EQ(req.error(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(uni.rank(1).counters().snapshot().get(Counter::kDeadlineExceededOps), 1u);
}

TEST(Deadline, BlockedSendExpiresTyped) {
  // A send stuck behind the reliability window (the peer never acks)
  // observes its deadline from inside the wait loop.
  Config cfg;
  cfg.reliable = true;
  cfg.reliability_window = 1;
  cfg.send_retry_limit = 0;  // unbounded retries: the deadline must fire
  cfg.rto_ns = 2'000'000'000ULL;
  cfg.rto_max_ns = 4'000'000'000ULL;
  Universe uni(cfg);
  char byte = 'd';
  Request a;
  uni.rank(0).isend(kWorldComm, 1, 1, &byte, 1, a);  // fills the window
  EXPECT_FALSE(a.failed());
  Request b;
  uni.rank(0).isend(kWorldComm, 1, 1, &byte, 1, b, now_ns() + 2'000'000);
  uni.rank(0).wait(b);
  EXPECT_EQ(b.error(), ErrorCode::kDeadlineExceeded);
  EXPECT_GE(uni.rank(0).counters().snapshot().get(Counter::kDeadlineExceededOps), 1u);
}

TEST(Deadline, RendezvousRaceSettlesExactlyOnce) {
  // Deadline expiry races rendezvous completion: whichever settles first
  // wins the one-shot CAS; the loser must neither double-settle nor leave
  // the engine wedged.
  Config cfg;
  cfg.eager_limit = 64;
  Universe uni(cfg);
  std::vector<char> payload(4096, 'v');
  int completed = 0, expired = 0;
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<char> got(4096);
    Request sreq, rreq;
    const int tag = 300 + iter;
    // Deadline tight enough to lose sometimes, long enough to win often.
    uni.rank(1).irecv(kWorldComm, 0, tag, got.data(), got.size(), rreq,
                      now_ns() + 200'000 * (iter % 4));
    uni.rank(0).isend(kWorldComm, 1, tag, payload.data(), payload.size(), sreq);
    ASSERT_TRUE(drive(uni, {0, 1}, [&] { return rreq.done(); })) << iter;
    if (rreq.error() == ErrorCode::kOk) {
      ++completed;
      EXPECT_EQ(got[0], 'v');
    } else {
      ASSERT_EQ(rreq.error(), ErrorCode::kDeadlineExceeded) << iter;
      ++expired;
    }
    // The sender side must always terminate too (completion, or discard
    // against the receiver's tombstone when the deadline beat the match,
    // in which case cancel reaps it).
    const std::uint64_t until = now_ns() + 100'000'000ULL;
    while (!sreq.done() && now_ns() < until) {
      uni.rank(0).progress();
      uni.rank(1).progress();
    }
    if (!sreq.done()) (void)sreq.cancel();
  }
  // The race is real on any schedule: both outcomes must be reachable...
  // but don't flake a loaded CI box — only the settle-exactly-once and
  // no-hang guarantees above are hard assertions.
  EXPECT_GE(completed + expired, 50);
}

TEST(Deadline, CheckedOpsHonourConfigDeadline) {
  Config cfg;
  cfg.op_deadline_ns = 2'000'000;  // every checked op is bounded: 2 ms
  Universe uni(cfg);
  char buf = 0;
  // No sender: recv_checked must come back typed instead of spinning.
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    while (!stop.load(std::memory_order_relaxed)) uni.rank(1).progress();
  });
  const ErrorCode ec = uni.rank(1).world().recv_checked(0, 7, &buf, 1, nullptr);
  EXPECT_EQ(ec, ErrorCode::kDeadlineExceeded);
  stop.store(true, std::memory_order_relaxed);
  driver.join();  // must not outlive the stack universe it drives
}

// --- quiesce timeout diagnostics + observability surface ---

TEST(Overload, QuiesceTimeoutReportsBacklog) {
  // A fully lossy fabric strands tracked entries, so quiesce cannot drain:
  // it must fail AND say why — a typed kQuiesceTimeout per backlogged rank
  // with the resource counts packed into Error::detail.
  Config cfg;
  cfg.faults.drop = 1.0;
  cfg.rto_ns = 2'000'000'000ULL;
  cfg.rto_max_ns = 4'000'000'000ULL;  // entries survive the whole timeout
  cfg.max_retries = 1000;
  Universe uni(cfg);
  ErrorCapture errors;
  uni.rank(0).set_error_sink(ErrorCapture::sink, &errors);
  char byte = 'q';
  Request req;
  uni.rank(0).isend(kWorldComm, 1, 1, &byte, 1, req);
  EXPECT_FALSE(uni.quiesce(5'000'000));
  ASSERT_TRUE(errors.saw(ErrorCode::kQuiesceTimeout));
  EXPECT_GE(uni.rank(0).counters().snapshot().get(Counter::kQuiesceTimeouts), 1u);
  LockGuard guard(errors.lock);
  for (const Error& e : errors.errors) {
    if (e.code != ErrorCode::kQuiesceTimeout) continue;
    EXPECT_GE((e.detail >> 32) & 0xffff, 1u);  // tracked in-flight entries
  }
}

TEST(Overload, ObservabilityExportsOverloadState) {
  Config cfg;
  cfg.unexpected_cap = 8;
  cfg.unexpected_policy = overload::Policy::kShed;
  cfg.reliable = true;
  Universe uni(cfg);
  std::ostringstream os;
  uni.dump_observability(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"overload\""), std::string::npos);
  EXPECT_NE(json.find("\"level\": \"healthy\""), std::string::npos);
  EXPECT_NE(json.find("\"unexpected_policy\": \"shed\""), std::string::npos);
  EXPECT_NE(json.find("\"payload_pool\""), std::string::npos);
  EXPECT_NE(json.find("\"high_water_bytes\""), std::string::npos);
}

TEST(Overload, UncappedGovernorReportsNull) {
  Universe uni(Config{});
  EXPECT_FALSE(uni.rank(0).governor().enabled());
  std::ostringstream os;
  uni.dump_observability(os);
  EXPECT_NE(os.str().find("\"overload\": null"), std::string::npos);
}

}  // namespace
}  // namespace fairmpi
