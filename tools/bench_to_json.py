#!/usr/bin/env python3
"""Run a Google-Benchmark binary and distill its output to BENCH_<name>.json.

The emitted file is the repo's perf-regression baseline format:

    {
      "name": "ablation_matching",
      "host": { ... benchmark context + platform metadata ... },
      "series": {
        "BM_MatchInOrder": {"real_time_ns": 136.2, "cpu_time_ns": 133.4,
                             "items_per_second": 7534640.0},
        ...
      }
    }

Only aggregate-free repetitions are kept (the default single run). Times are
normalized to nanoseconds so compare never has to care about time_unit.

Usage:
    bench_to_json.py --binary build/bench/bench_ablation_matching \
                     --out BENCH_ablation_matching.json [--name ablation_matching]
                     [-- extra benchmark args...]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

_NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_benchmark(binary: Path, extra_args: list[str]) -> dict:
    cmd = [str(binary), "--benchmark_format=json", *extra_args]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"bench_to_json: {binary} exited {proc.returncode}")
    return json.loads(proc.stdout)


def distill(raw: dict) -> tuple[dict, dict]:
    host = dict(raw.get("context", {}))
    host["platform"] = platform.platform()
    host["machine"] = platform.machine()
    series = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = _NS_PER.get(b.get("time_unit", "ns"), 1.0)
        entry = {
            "real_time_ns": b["real_time"] * unit,
            "cpu_time_ns": b["cpu_time"] * unit,
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "bytes_per_second" in b:
            entry["bytes_per_second"] = b["bytes_per_second"]
        series[b["name"]] = entry
    return host, series


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, type=Path)
    ap.add_argument("--out", required=True, type=Path)
    ap.add_argument("--name", help="series name; default: binary name sans bench_ prefix")
    ap.add_argument("extra", nargs="*", help="extra args passed to the benchmark binary")
    args = ap.parse_args()

    name = args.name or args.binary.name.removeprefix("bench_")
    raw = run_benchmark(args.binary, args.extra)
    host, series = distill(raw)
    if not series:
        raise SystemExit(f"bench_to_json: {args.binary} produced no benchmark series")
    args.out.write_text(
        json.dumps({"name": name, "host": host, "series": series}, indent=2,
                   sort_keys=True) + "\n")
    print(f"bench_to_json: wrote {args.out} ({len(series)} series)")


if __name__ == "__main__":
    main()
