#!/usr/bin/env python3
"""Concurrency lint for fairmpi.

Style-level rules the compiler cannot express, each targeting a bug class the
multithreaded-MPI papers report losing days to:

  bare-lock      .lock()/.unlock() statements outside RAII. Every acquisition
                 must be scoped (fairmpi::LockGuard), or sit within a few
                 lines of an adopting guard (the timed-acquire idiom:
                 LockGuard g(lock, adopt_lock)), or carry an allow
                 annotation.

  relaxed-sync   A memory_order_relaxed load gating a branch decision with no
                 acquire operation in sight. Relaxed loads are fine as
                 fast-path gates *when* the actual synchronization (an
                 acquire exchange/CAS) is adjacent; a bare relaxed gate is
                 how "works on x86" visibility bugs ship. Adjacency is
                 measured in *statements* (via lock_graph's statement
                 grouping), so a CAS wrapped over several physical lines, or
                 separated from its gate by comment lines, still counts as
                 adjacent — and a gate five short lines away from an
                 unrelated acquire no longer sneaks through.

  unranked-mutex A mutex-like member (Spinlock / TicketLock / std::mutex
                 family) declared raw instead of through RankedLock<T>, i.e.
                 invisible to the lock-rank validator.

  hotpath-alloc  An allocation (`new`, make_unique/make_shared, malloc) or a
                 node-allocating container call (emplace / insert / resize /
                 reserve) inside a file declared allocation-free by policy
                 (HOTPATH_FILES — the matching engine, progress engine,
                 sender, and the pool/ring primitives they build on). These
                 paths run under engine locks at or below rank kMatch, where
                 a malloc is both a latency cliff and a lock-hierarchy
                 hazard (§II-C). Setup-time and deliberate slow-path
                 allocations stay, annotated. push_back/emplace_back are
                 deliberately NOT matched: the hot path's intrusive lists
                 share those names and never allocate; growing a std
                 container on these paths via emplace/insert/resize/reserve
                 is still caught.

  no-tsa-hotpath FAIRMPI_NO_TSA in a hot-path file. The tsa preset compiles
                 the engine with -Werror=thread-safety; opting a hot-path
                 function out of the analysis would silently re-open the
                 hole the preset exists to close. The only sanctioned
                 NO_TSA bodies are the RankedLock forwarding shims in
                 lockcheck.hpp (an exempt file).

  allow-without-reason
                 A `lint: allow(<rule>)` annotation with no reason text
                 after the closing parenthesis. The reason is part of the
                 syntax, not culture: a suppression that does not say WHY it
                 is safe is itself a finding, and a hard failure.

Suppression: add `lint: allow(<rule>) <reason>` in a comment on the offending
line or the line above. `--allow-report` lists every suppression in the tree
with its reason, for review sweeps.

Scope: include/ and src/. Tests and benches construct adversarial lock states
on purpose (holding a lock to force try_lock failure, benchmarking a bare
primitive) and are exempt.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
try:
    from lock_graph import statement_spans, strip_comments
except ImportError:  # standalone copy of the linter: fall back to line windows
    statement_spans = None
    strip_comments = None

SCAN_DIRS = ("include", "src")
CXX_SUFFIXES = {".hpp", ".h", ".cpp", ".cc", ".cxx"}

# Files that implement the primitives / the validator itself.
EXEMPT_FILES = {
    "include/fairmpi/common/spinlock.hpp",
    "include/fairmpi/debug/lockcheck.hpp",
    "include/fairmpi/debug/thread_safety.hpp",
    "src/debug/lockcheck.cpp",
}

ALLOW_RE = re.compile(r"lint:\s*allow\((?P<rules>[\w,\s-]+)\)(?P<reason>[^\n]*)")

# `foo.lock();` / `foo->unlock();` / `inst.lock().lock();` as a whole
# statement. Expression-statements only: declarations like
# `LockGuard guard(lock);` do not match.
BARE_LOCK_RE = re.compile(r"^\s*[\w\.\->\(\)\[\]:]*(?:\.|->)(?:lock|unlock)\(\s*\)\s*;")
# Both spellings: std::adopt_lock (pre-TSA guards) and fairmpi::adopt_lock /
# bare adopt_lock (fairmpi::LockGuard's adopting constructor).
ADOPT_RE = re.compile(r"\badopt_lock\b")
ADOPT_WINDOW = 4  # lines around a bare lock in which an adopting guard counts

RELAXED_LOAD_RE = re.compile(r"\.load\(std::memory_order_relaxed\)")
BRANCH_RE = re.compile(r"^\s*(?:\}?\s*else\s+)?(?:if|while)\s*\(|\breturn\b.*\?")
ACQUIRE_RE = re.compile(r"memory_order_acq|__tsan_acquire|std::atomic_thread_fence")
ACQUIRE_WINDOW = 4  # line fallback when statement grouping is unavailable
ACQUIRE_STMTS_AFTER = 2  # statements after the gate in which an acquire counts
ACQUIRE_STMTS_BEFORE = 1  # ... and before (acquire-then-recheck idiom)

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:fairmpi::)?"
    r"(?:Spinlock|TicketLock|std::(?:recursive_|shared_|timed_)?mutex)\s+"
    r"\w+\s*(?:;|\{|=)"
)
MUTEX_ARRAY_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::array<\s*(?:fairmpi::)?(?:Spinlock|TicketLock)\b"
)

NO_TSA_RE = re.compile(r"\bFAIRMPI_NO_TSA\b")

# Allocation-free-by-policy files (relative to the repo root): the message
# hot path and the primitives it runs on. Steady state must recycle through
# SlabPool / PayloadPool / intrusive lists; every allocation in these files
# is either setup-time or a documented slow path and carries an allow.
HOTPATH_FILES = {
    "src/match/match_engine.cpp",
    "src/progress/progress.cpp",
    "src/p2p/sender.cpp",
    "src/fabric/wire.cpp",
    "include/fairmpi/common/slab_pool.hpp",
    "include/fairmpi/common/mpsc_ring.hpp",
    "include/fairmpi/common/intrusive_list.hpp",
    # Reliability/fault/watchdog paths run from progress() and the send
    # path; their allocations must be gated on fault injection being on
    # (or annotated as cold outcomes).
    "src/p2p/reliability.cpp",
    "src/progress/watchdog.cpp",
    "src/fabric/faults.cpp",
    # Observability hooks run inside every lock acquisition and every CRI
    # drain; the only allocation allowed is the annotated first-touch shard
    # allocation in contention.cpp.
    "src/obs/contention.cpp",
    "include/fairmpi/obs/contention.hpp",
    "include/fairmpi/obs/utilization.hpp",
    # The lock-free injection path (DESIGN.md §5f): the submission funnel,
    # the per-source RX lanes, the producer backoff, and the inject/flush
    # logic itself all run per-packet. Everything here must be setup-time
    # (ctor, first-bind) or annotated.
    "include/fairmpi/fabric/submit_ring.hpp",
    "include/fairmpi/common/spsc_ring.hpp",
    "include/fairmpi/common/backoff.hpp",
    "include/fairmpi/fabric/wire.hpp",
    "include/fairmpi/cri/cri.hpp",
    "src/cri/cri.cpp",
    # Overload control (DESIGN.md §5h): the admission checks run per-packet
    # under the match lock and per-injection on the send path; the governor
    # runs inside every progress visit. Nothing here may allocate.
    "src/overload/overload.cpp",
    "include/fairmpi/overload/overload.hpp",
}

HOTPATH_ALLOC_RE = re.compile(
    r"(?:^|[^\w.])new\b(?!\s*\()"  # `new T`, `new (place) T` handled below
    r"|\bnew\s*\("
    r"|\bstd::make_(?:unique|shared)\b"
    r"|\bmalloc\s*\("
    r"|\.(?:emplace|insert|resize|reserve)\s*\("
)
# Placement new recycles pool storage — it is the allocation-free idiom, not
# an allocation. `::new (p) T(...)` / `new (p) T(...)`.
PLACEMENT_NEW_RE = re.compile(r"(?:::)?new\s*\(\s*[a-zA-Z_]\w*\s*\)")


class Finding:
    def __init__(self, path: pathlib.Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


class Allow:
    def __init__(self, path: pathlib.Path, line_no: int, rules: list[str],
                 reason: str):
        self.path = path
        self.line_no = line_no
        self.rules = rules
        self.reason = reason


def parse_allow(text: str):
    """Return (rules, reason) for an allow annotation in `text`, else None."""
    m = ALLOW_RE.search(text)
    if not m:
        return None
    rules = [r.strip() for r in m.group("rules").split(",") if r.strip()]
    reason = m.group("reason").strip().rstrip("*/").strip()
    return rules, reason


def allows(line: str, prev_line: str, rule: str) -> bool:
    """A finding is suppressed only by an allow that names its rule AND
    carries a reason; a reasonless allow suppresses nothing (and is itself
    reported as allow-without-reason)."""
    for text in (line, prev_line):
        parsed = parse_allow(text)
        if parsed and rule in parsed[0] and parsed[1]:
            return True
    return False


def window(lines: list[str], idx: int, radius: int) -> str:
    lo = max(0, idx - radius)
    hi = min(len(lines), idx + radius + 1)
    return "\n".join(lines[lo:hi])


def acquire_adjacent(code_lines: list[str], spans, line_to_stmt, idx: int) -> bool:
    """Statement-level adjacency: an acquire in the gate's own statement, the
    statement before it, or the ACQUIRE_STMTS_AFTER statements after it."""
    if spans is None:
        return bool(ACQUIRE_RE.search(window(code_lines, idx, ACQUIRE_WINDOW)))
    si = line_to_stmt.get(idx)
    if si is None:
        return bool(ACQUIRE_RE.search(window(code_lines, idx, ACQUIRE_WINDOW)))
    lo = max(0, si - ACQUIRE_STMTS_BEFORE)
    hi = min(len(spans), si + ACQUIRE_STMTS_AFTER + 1)
    text = "\n".join(
        code_lines[spans[s][0]: spans[s][1] + 1][j]
        for s in range(lo, hi)
        for j in range(spans[s][1] - spans[s][0] + 1)
    )
    return bool(ACQUIRE_RE.search(text))


def lint_file(path: pathlib.Path, rel: str, allow_log: list[Allow]) -> list[Finding]:
    findings: list[Finding] = []
    raw = path.read_text(encoding="utf-8", errors="replace")
    lines = raw.splitlines()

    if strip_comments is not None:
        code_lines = strip_comments(raw).splitlines()
        spans = statement_spans(code_lines)
        line_to_stmt = {}
        for si, (lo, hi) in enumerate(spans):
            for ln in range(lo, hi + 1):
                line_to_stmt[ln] = si
    else:
        code_lines = None
        spans = None
        line_to_stmt = {}

    for i, line in enumerate(lines):
        prev = lines[i - 1] if i > 0 else ""
        if code_lines is not None and i < len(code_lines):
            code = code_lines[i]
        else:
            code = line.split("//", 1)[0] if not line.lstrip().startswith("//") else ""

        parsed = parse_allow(line)
        if parsed is not None:
            rules, reason = parsed
            allow_log.append(Allow(path, i + 1, rules, reason))
            if not reason:
                findings.append(
                    Finding(
                        path, i + 1, "allow-without-reason",
                        "allow({}) has no reason: state WHY the suppression "
                        "is safe after the closing parenthesis".format(
                            ",".join(rules)),
                    )
                )

        if BARE_LOCK_RE.match(code):
            if not allows(line, prev, "bare-lock") and not ADOPT_RE.search(
                window(lines, i, ADOPT_WINDOW)
            ):
                findings.append(
                    Finding(
                        path, i + 1, "bare-lock",
                        "bare lock()/unlock() statement: use fairmpi::LockGuard "
                        "(or adopt within {} lines, or annotate)".format(ADOPT_WINDOW),
                    )
                )

        if RELAXED_LOAD_RE.search(code) and BRANCH_RE.match(code):
            adjacent = acquire_adjacent(
                code_lines if code_lines is not None else lines,
                spans, line_to_stmt, i)
            if not allows(line, prev, "relaxed-sync") and not adjacent:
                findings.append(
                    Finding(
                        path, i + 1, "relaxed-sync",
                        "relaxed load gates a branch with no adjacent acquire: "
                        "pair with an acquire or annotate with the reason it is safe",
                    )
                )

        if rel.endswith((".hpp", ".h")) and (
            MUTEX_MEMBER_RE.match(code) or MUTEX_ARRAY_RE.match(code)
        ):
            if not allows(line, prev, "unranked-mutex"):
                findings.append(
                    Finding(
                        path, i + 1, "unranked-mutex",
                        "raw mutex member is invisible to the lock-rank validator: "
                        "declare it as RankedLock<T> with a LockRank",
                    )
                )

        is_preproc = code.lstrip().startswith("#")  # e.g. `#include <new>`
        if rel in HOTPATH_FILES and not is_preproc and HOTPATH_ALLOC_RE.search(code):
            if not PLACEMENT_NEW_RE.search(code) and not allows(
                line, prev, "hotpath-alloc"
            ):
                findings.append(
                    Finding(
                        path, i + 1, "hotpath-alloc",
                        "allocation in an allocation-free hot-path file: recycle "
                        "through SlabPool/PayloadPool or annotate a setup/slow path",
                    )
                )

        if rel in HOTPATH_FILES and NO_TSA_RE.search(code):
            if not allows(line, prev, "no-tsa-hotpath"):
                findings.append(
                    Finding(
                        path, i + 1, "no-tsa-hotpath",
                        "FAIRMPI_NO_TSA opts a hot-path function out of "
                        "-Werror=thread-safety: restructure so the analysis "
                        "can see the locking instead",
                    )
                )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--allow-report", action="store_true",
                        help="list every lint: allow() suppression with its "
                             "reason instead of linting")
    parser.add_argument("paths", nargs="*", help="restrict to these files")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    if not root.is_dir():
        print(f"lint_concurrency: no such root: {root}", file=sys.stderr)
        return 2

    if args.paths:
        files = [pathlib.Path(p).resolve() for p in args.paths]
    else:
        files = [
            f
            for d in SCAN_DIRS
            for f in sorted((root / d).rglob("*"))
            if f.suffix in CXX_SUFFIXES
        ]

    findings: list[Finding] = []
    allow_log: list[Allow] = []
    for f in files:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) else f.as_posix()
        if rel in EXEMPT_FILES:
            continue
        findings.extend(lint_file(f, rel, allow_log))

    if args.allow_report:
        for a in allow_log:
            reason = a.reason if a.reason else "<MISSING REASON>"
            print(f"{a.path}:{a.line_no}: allow({','.join(a.rules)}) {reason}")
        n_bad = sum(1 for a in allow_log if not a.reason)
        print(f"lint_concurrency: {len(allow_log)} suppression(s), "
              f"{n_bad} without a reason", file=sys.stderr)
        return 1 if n_bad else 0

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_concurrency: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_concurrency: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
