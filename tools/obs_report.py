#!/usr/bin/env python3
"""Observability report / trace validator for fairmpi.

Two roles, combinable in one invocation:

  --validate TRACE.json    Structurally validate an exported Chrome
                           trace-event file (Universe::export_chrome_trace):
                           top-level object schema, per-event required keys,
                           phase-specific constraints ("M" metadata, "i"
                           instants, "n" async instants), monotone-sane
                           timestamps, and that every (pid, tid) carrying
                           events also carries thread_name metadata.

  --report OBS.json        Render Universe::dump_observability() output as
                           lock-contention and per-CRI utilization tables.
                           --require-wait CLASS (repeatable) turns "class
                           CLASS recorded zero wait time" into a failure —
                           CI uses it to assert the profiler attributes
                           blocked time where the design says it must go.

Exit status: 0 ok, 1 validation/requirement failure, 2 usage error.
Stdlib only (json/argparse) — runs on a bare CI runner.
"""

from __future__ import annotations

import argparse
import json
import sys

VALID_PHASES = {"M", "i", "n", "B", "E", "X", "b", "e"}
EXPECTED_EVENT_NAMES = {
    "Send", "RecvPost", "RecvDone", "Progress", "RmaPut", "RmaGet", "RmaFlush",
    "RndvRts", "RndvDone", "Retransmit", "WatchdogStall",
    "AckSent", "AckRecv", "CsumDrop", "CriDrain",
    "OverloadShed", "OverloadLevel", "OverloadPause", "Cancel", "Deadline",
    "CollOp",
}

# Overload-control SPCs (DESIGN.md §5h): --report fails if a snapshot's
# spc_total is missing any of these — exporter/schema drift would otherwise
# silently blind the memory-pressure chaos job's accounting.
OVERLOAD_SPC_NAMES = (
    "OverloadShedMessages", "OverloadNacksSent", "OverloadNacksReceived",
    "OverloadPausedPeers", "OverloadLevelChanges", "OverloadPoolPeak",
    "CancelledOps", "DeadlineExceededOps", "QuiesceTimeouts",
)

# Collective SPCs (DESIGN.md §5i): same drift guard as the §5h set — the
# coll-mt CI job's accounting and the collectives table below read these.
COLL_SPC_NAMES = (
    "CollOps", "CollRounds", "CollSegments", "CollLaneAcquires",
    "CollLaneWaits", "CollBinomialOps", "CollRsagOps", "CollPipelinedOps",
    "ReservedTagRejects",
)


def fail(msg: str) -> None:
    print(f"obs_report: FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


# ---------------------------------------------------------------- validate


def validate_trace(path: str, verbose: bool) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: not readable JSON: {exc}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")

    named_threads: set[tuple[int, int]] = set()
    event_threads: set[tuple[int, int]] = set()
    instants = 0
    async_lanes: set[tuple[int, str]] = set()
    unknown_names: set[str] = set()

    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event is not an object")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{where}: bad or missing ph {ph!r}")
        if "pid" not in ev or not isinstance(ev["pid"], int):
            fail(f"{where}: missing integer pid")

        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name", "process_sort_index",
                                      "thread_sort_index"):
                fail(f"{where}: unknown metadata record {ev.get('name')!r}")
            if ev["name"] == "thread_name":
                if "tid" not in ev:
                    fail(f"{where}: thread_name metadata without tid")
                named_threads.add((ev["pid"], ev["tid"]))
            continue

        # Non-metadata events need a timestamp and a name.
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: missing or negative ts")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing name")

        if ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                fail(f"{where}: instant event without a valid scope 's'")
            if "tid" not in ev:
                fail(f"{where}: instant event without tid")
            event_threads.add((ev["pid"], ev["tid"]))
            instants += 1
            if name not in EXPECTED_EVENT_NAMES:
                unknown_names.add(name)
        elif ph == "n":
            if "id" not in ev:
                fail(f"{where}: async instant without an id")
            if not ev.get("cat"):
                fail(f"{where}: async instant without a cat")
            async_lanes.add((ev["pid"], str(ev["id"])))

    orphans = event_threads - named_threads
    if orphans:
        fail(f"{path}: threads with events but no thread_name metadata: {sorted(orphans)}")
    if unknown_names:
        fail(f"{path}: unknown event names (exporter/schema drift): {sorted(unknown_names)}")

    print(f"obs_report: {path}: OK — {len(events)} events "
          f"({instants} instants, {len(named_threads)} named threads, "
          f"{len(async_lanes)} CRI lanes)")
    if verbose:
        for pid, lane in sorted(async_lanes):
            print(f"  async lane: pid={pid} id={lane}")


# ------------------------------------------------------------------ report


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    out = []
    line = "  ".join(h.ljust(widths[c]) for c, h in enumerate(headers))
    out.append(line)
    out.append("-" * len(line))
    for row in rows:
        out.append("  ".join(cell.rjust(widths[c]) if c else cell.ljust(widths[c])
                             for c, cell in enumerate(row)))
    return "\n".join(out)


def fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.2f}us"
    return f"{ns}ns"


def report_obs(path: str, require_wait: list[str]) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: not readable JSON: {exc}")

    for key in ("obs_enabled", "contention", "ranks", "spc_total"):
        if key not in doc:
            fail(f"{path}: missing top-level key {key!r}")

    cfg = doc.get("config", {})
    print(f"fairmpi observability report — {path}")
    print(f"  obs_enabled={doc['obs_enabled']}  ranks={cfg.get('num_ranks')}  "
          f"instances={cfg.get('num_instances')}  "
          f"assignment={cfg.get('assignment')}  progress={cfg.get('progress')}")
    print()

    # --- lock contention ---
    classes = sorted(doc["contention"], key=lambda c: -int(c["wait_ns"]))
    rows = []
    for c in classes:
        acq = int(c["acquires"])
        contended = int(c["contended"])
        rows.append([
            c["name"], str(c["rank"]), str(acq), str(contended),
            f"{100.0 * contended / acq:.2f}%" if acq else "-",
            fmt_ns(int(c["wait_ns"])), str(c["trylock_fails"]),
        ])
    print("lock contention (by wait time):")
    print(render_table(
        ["class", "rank", "acquires", "contended", "cont%", "wait", "trylock-fails"],
        rows))
    print()

    # --- per-CRI utilization ---
    util_rows = []
    for rank in doc["ranks"]:
        for inst in rank["instances"]:
            hist = inst["drain_hist"]
            util_rows.append([
                f"r{rank['rank']}.cri{inst['id']}",
                str(inst["injections"]), str(inst["packets_drained"]),
                str(inst["completions_drained"]), str(inst["drain_visits"]),
                str(inst["own_trylock_misses"]), str(inst["orphan_sweeps"]),
                "/".join(str(h) for h in hist),
            ])
    print("per-CRI utilization:")
    print(render_table(
        ["instance", "inject", "pkts-out", "comps-out", "visits",
         "own-miss", "sweeps", "batch-hist(1/2/4/8/16/32/33+)"],
        util_rows))
    print()

    # --- per-CRI submission ring (lock-free injection path, DESIGN.md §5f) ---
    # Older snapshots (pre-PR-7) have no submit fields; skip the table then.
    submit_rows = []
    for rank in doc["ranks"]:
        for inst in rank["instances"]:
            if "submit_claimed" not in inst:
                continue
            submit_rows.append([
                f"r{rank['rank']}.cri{inst['id']}",
                str(inst["submit_claimed"]), str(inst["submit_doorbells"]),
                str(inst["submit_cas_retries"]),
                "/".join(str(h) for h in inst["submit_flush_hist"]),
            ])
    if submit_rows:
        print("per-CRI submission ring:")
        print(render_table(
            ["instance", "claimed", "doorbells", "cas-retries",
             "flush-hist(1/2/4/8/16/32/33+)"],
            submit_rows))

    # --- overload control (DESIGN.md §5h) ---
    # Older snapshots (pre-§5h) have no overload/payload_pool keys; the
    # per-rank view is null when no cap is configured.
    overload_rows = []
    for rank in doc["ranks"]:
        ov = rank.get("overload")
        if ov is None:
            continue
        spc = rank.get("spc", {})
        overload_rows.append([
            f"r{rank['rank']}", ov["level"], str(ov["paused_peers"]),
            f"{ov['unexpected_cap']}/{ov['unexpected_policy']}",
            f"{ov['pool_cap_bytes']}/{ov['pool_policy']}",
            f"{ov['tracker_cap']}/{ov['tracker_policy']}",
            str(spc.get("OverloadShedMessages", 0)),
            str(spc.get("OverloadNacksSent", 0)),
            str(spc.get("CancelledOps", 0)),
            str(spc.get("DeadlineExceededOps", 0)),
        ])
    if overload_rows:
        print("overload control (per capped rank):")
        print(render_table(
            ["rank", "level", "paused", "unexp-cap", "pool-cap", "trk-cap",
             "shed", "nacks", "cancels", "deadlines"],
            overload_rows))
        pool = doc.get("payload_pool", {})
        print(f"  payload_pool: in_use={pool.get('in_use_bytes')}B "
              f"high_water={pool.get('high_water_bytes')}B")
        print()

    # --- collectives (DESIGN.md §5i) ---
    # Only rendered once any rank ran a collective; pre-§5i snapshots (or
    # p2p-only runs) skip the table.
    coll_rows = []
    for rank in doc["ranks"]:
        spc = rank.get("spc", {})
        if not spc.get("CollOps"):
            continue
        coll_rows.append([
            f"r{rank['rank']}", str(spc.get("CollOps", 0)),
            str(spc.get("CollRounds", 0)), str(spc.get("CollSegments", 0)),
            str(spc.get("CollBinomialOps", 0)), str(spc.get("CollRsagOps", 0)),
            str(spc.get("CollPipelinedOps", 0)),
            str(spc.get("CollLaneAcquires", 0)), str(spc.get("CollLaneWaits", 0)),
            str(spc.get("ReservedTagRejects", 0)),
        ])
    if coll_rows:
        print("collectives (per rank):")
        print(render_table(
            ["rank", "ops", "rounds", "segs", "binomial", "rsag", "pipelined",
             "lane-acq", "lane-wait", "tag-rejects"],
            coll_rows))
        print()

    # --- requirements ---
    failures = []
    # Schema-drift guard: a snapshot that carries spc_total must carry the
    # §5h counters — the chaos jobs' accounting depends on them.
    spc_total = doc.get("spc_total", {})
    for name in OVERLOAD_SPC_NAMES:
        if name not in spc_total:
            failures.append(f"spc_total is missing overload counter {name!r}")
    for name in COLL_SPC_NAMES:
        if name not in spc_total:
            failures.append(f"spc_total is missing coll counter {name!r}")
    by_name = {c["name"]: c for c in doc["contention"]}
    for want in require_wait:
        c = by_name.get(want)
        if c is None:
            failures.append(f"required lock class {want!r} never interned")
        elif int(c["wait_ns"]) <= 0:
            failures.append(f"lock class {want!r} recorded zero wait time")
    if failures:
        print()
        for msg in failures:
            print(f"obs_report: FAIL: {msg}", file=sys.stderr)
        raise SystemExit(1)
    if require_wait:
        print(f"\nobs_report: wait-time attribution OK for: {', '.join(require_wait)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--validate", metavar="TRACE_JSON",
                        help="validate an exported Chrome trace file")
    parser.add_argument("--report", metavar="OBS_JSON",
                        help="render a dump_observability() snapshot")
    parser.add_argument("--require-wait", action="append", default=[],
                        metavar="CLASS",
                        help="with --report: fail unless CLASS has wait_ns > 0")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if not args.validate and not args.report:
        parser.print_usage(sys.stderr)
        return 2
    if args.require_wait and not args.report:
        print("obs_report: --require-wait needs --report", file=sys.stderr)
        return 2

    if args.validate:
        validate_trace(args.validate, args.verbose)
    if args.report:
        report_obs(args.report, args.require_wait)
    return 0


if __name__ == "__main__":
    sys.exit(main())
