#!/usr/bin/env python3
"""Static lock-order graph checker for fairmpi.

The runtime lock-rank validator (debug/lockcheck.hpp) catches rank and cycle
violations on schedules that actually execute; this tool proves the same two
invariants over every acquisition *in the source*, including orderings no
test schedule ever reaches:

  1. every RankedLock declaration is collected into its lock class — the
     (LockRank, name) pair the runtime validator would intern;
  2. every acquisition site (fairmpi::LockGuard, adopting guards, the
     timed-acquire idiom, bare .lock()/.try_lock()) is located and its
     enclosing-lock context reconstructed, including one level of
     interprocedural propagation (a call made while holding lock A charges
     the callee's transitive acquisitions to A);
  3. the resulting directed graph of held-class -> acquired-class edges is
     checked for rank monotonicity on blocking edges (try-acquires are
     exempt, exactly like the runtime rules — Algorithm 2's sweep depends on
     same-rank try-locks) and for cycles among blocking edges;
  4. the declared LockRank table is cross-checked against what the sweep
     observed: every enum rank must be backed by a real declaration, and
     every declaration must name a declared enum rank.

Engines:
  --engine=lexical   comment-aware single-pass scanner (no dependencies;
                     the engine exercised by the repo's own test gate).
  --engine=libclang  AST walk over compile_commands.json via clang.cindex,
                     when the python clang bindings are importable. Falls
                     back to lexical with a warning otherwise.
  --engine=auto      libclang when importable, else lexical (default).

Artifacts: --json (machine-readable graph + violations), --dot (Graphviz,
blocking edges solid / try edges dashed), --markdown (the lock-rank table
embedded in DESIGN.md), --check-design (drift gate: fails when DESIGN.md's
generated table no longer matches the source).

Exit status: 0 clean, 1 violations (or design drift), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field

DEFAULT_SCAN_DIRS = ("include", "src")
CXX_SUFFIXES = {".hpp", ".h", ".cpp", ".cc", ".cxx"}
LOCKRANK_HEADER = "include/fairmpi/debug/lockcheck.hpp"

# The wrapper/validator internals manipulate locks by design; their bodies
# are not engine acquisition sites.
EXEMPT_FILES = {
    "include/fairmpi/common/spinlock.hpp",
    "include/fairmpi/debug/lockcheck.hpp",
    "include/fairmpi/debug/thread_safety.hpp",
    "src/debug/lockcheck.cpp",
}


# ---------------------------------------------------------------- text utils


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line structure.

    String *contents* are replaced with spaces (the quotes stay) so regexes
    never match inside literals; newlines inside block comments survive so
    line numbers stay true.
    """
    out: list[str] = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail to code
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def statement_spans(code_lines: list[str]) -> list[tuple[int, int]]:
    """Group physical lines into statements (0-based inclusive spans).

    A statement ends at a line whose code ends with ';', '{', '}' or ':'
    (labels/access specifiers); anything else continues onto the next line.
    Used by lint_concurrency's statement-level relaxed-sync rule so a
    wrapped multi-line CAS counts as *adjacent* to the gate it follows.
    """
    spans: list[tuple[int, int]] = []
    start = None
    for i, raw in enumerate(code_lines):
        code = raw.strip()
        if not code:
            if start is None:
                continue
            # blank line inside a wrapped statement: keep accumulating
        if start is None:
            start = i
        if code.endswith((";", "{", "}", ":")) or code.startswith("#"):
            spans.append((start, i))
            start = None
    if start is not None:
        spans.append((start, len(code_lines) - 1))
    return spans


# ------------------------------------------------------------------- model


@dataclass(frozen=True)
class LockClass:
    enum: str  # LockRank enumerator, e.g. "kMatch"
    rank: int
    name: str  # runtime class name, e.g. "match.engine"


@dataclass
class Declaration:
    cls: LockClass
    file: str
    line: int
    member: str  # declared identifier ('' for unnamed prvalue constructions)


@dataclass
class Edge:
    src: str  # held class name
    dst: str  # acquired class name
    blocking: bool
    file: str
    line: int
    via: str = ""  # callee chain for interprocedural edges


@dataclass
class Violation:
    kind: str  # rank-inversion | cycle | self-deadlock | undeclared-rank | unused-rank
    message: str


@dataclass
class FunctionInfo:
    name: str
    file: str
    line: int
    direct: set = field(default_factory=set)  # (class_name, blocking)
    calls: set = field(default_factory=set)  # callee simple names
    call_sites: list = field(default_factory=list)  # (callee, held_classes, line)


# ------------------------------------------------------------ lexical engine

RANK_ENUM_RE = re.compile(r"^\s*k(\w+)\s*=\s*(\d+)\s*,")
USING_ALIAS_RE = re.compile(r"using\s+(\w+)\s*=\s*RankedLock\s*<")
SPINLOCK_DECL_RE = re.compile(r"^\s*(?:mutable\s+)?Spinlock\s+(\w+)\s*;", re.M)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

GUARD_RE = re.compile(
    r"\bLockGuard(?:<[^>]*>)?\s+\w+\s*\(\s*(?P<expr>[^;]*?)"
    r"(?:,\s*(?:fairmpi::)?adopt_lock\s*)?\)\s*;"
)
ADOPT_ARG_RE = re.compile(r",\s*(?:fairmpi::)?adopt_lock\s*\)\s*;")
BARE_LOCK_RE = re.compile(r"(?P<expr>[\w\.\->\(\)\[\]:]+?)(?:\.|->)lock\(\s*\)\s*;")
TRY_LOCK_RE = re.compile(r"(?P<expr>[\w\.\->\(\)\[\]:]+?)(?:\.|->)try_lock\(\s*\)")
_CAP_EXPR = r"(?P<expr>[\w.\->:\[\]]+(?:\(\s*\))?)"
REQUIRES_DECL_RE = re.compile(
    r"\b(?P<fn>\w+)\s*\([^;{}]*\)\s*(?:const\s*)?(?:noexcept\s*)?"
    r"FAIRMPI_REQUIRES\s*\(\s*" + _CAP_EXPR + r"\s*\)",
    re.S,
)
ACQUIRE_DECL_RE = re.compile(
    r"\b(?P<fn>\w+)\s*\([^;{}]*\)\s*(?:const\s*)?(?:noexcept\s*)?"
    r"FAIRMPI_ACQUIRE\s*\(\s*" + _CAP_EXPR + r"\s*\)",
    re.S,
)
CALL_RE = re.compile(r"(?:^|[^\w:.])(?:[\w\)\]]+(?:\.|->))?(?P<fn>[a-z]\w*)\s*\(")
CXX_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "alignas", "assert", "defined", "throw", "new", "delete", "do", "else",
    "static_assert", "decltype", "noexcept", "offsetof", "typedef", "using",
}
# Names never used to resolve a call site to a function summary: lock
# accessors and method names so generic (smart pointers, containers) that a
# simple-name match would conflate unrelated functions. `lock` is both the
# RankedLock accessor spelling and Window::lock (the RMA API entry) — engine
# code never calls the latter while holding a lock, so dropping the name
# loses nothing and prevents every `.lock()` from charging Window::lock's
# acquisitions to the caller.
CALL_STOPLIST = {
    "lock", "try_lock", "unlock", "internal_lock", "accumulate_lock",
    "get", "find", "data", "load", "store", "exchange", "release",
    "begin", "end", "size", "empty", "count", "reset", "clear", "swap",
    "at", "insert", "erase", "emplace", "emplace_back", "push_back",
    "pop_back", "front", "back", "value", "min", "max", "add",
}
# Attribute clauses in a definition header would confuse name extraction
# (FAIRMPI_ACQUIRE(inst.lock()) contains 'lock(').
ATTR_CLAUSE_RE = re.compile(r"FAIRMPI_\w+\s*\((?:[^()]|\([^()]*\))*\)")


def build_decl_regexes(aliases: set[str]):
    types = "|".join(["RankedLock\\s*<[^>]+>"] + sorted(re.escape(a) for a in aliases))
    named = re.compile(
        r"(?:^|\s)(?:mutable\s+)?(?:" + types + r")\s+(?P<member>\w+)\s*\{\s*"
        r"(?:debug::)?LockRank::k(?P<enum>\w+)\s*,\s*\"(?P<name>[^\"]+)\""
    )
    unnamed = re.compile(
        r"(?:" + types + r")\s*\{\s*"
        r"(?:debug::)?LockRank::k(?P<enum>\w+)\s*,\s*\"(?P<name>[^\"]+)\""
    )
    array = re.compile(
        r"std::array<\s*(?:" + types + r")\s*,[^>]*>\s*(?P<member>\w+)\b(?!\s*\()"
    )
    accessor = re.compile(
        r"(?:" + types + r")&\s+(?P<fn>\w+)\s*\([^)]*\)[^;{]*\{[^;{}]*?"
        r"return\s+(?P<ret>[\w\[\]\(\)\. %/]+?)\s*;",
        re.S,
    )
    return named, unnamed, array, accessor


class LexicalModel:
    """Whole-repo lexical facts: ranks, declarations, accessors, symbols."""

    def __init__(self, root: pathlib.Path, scan_dirs, files):
        self.root = root
        self.files = files  # rel -> raw text
        self.code = {rel: strip_comments(t) for rel, t in files.items()}
        self.ranks: dict[str, int] = {}
        self.aliases: set[str] = set()
        self.classes: dict[str, LockClass] = {}  # by runtime name
        self.decls: list[Declaration] = []
        # per-file: member identifier -> class runtime name
        self.file_members: dict[str, dict[str, str]] = {}
        # accessor simple name -> class runtime name (unique names only)
        self.accessors: dict[str, str] = {}
        # raw (unranked) Spinlock identifiers, deliberate leaf locks
        self.raw_locks: set[str] = set()
        # REQUIRES/ACQUIRE contracts declared anywhere: fn -> capability expr
        self.requires: dict[str, str] = {}
        self.acquires_fn: dict[str, str] = {}
        self.includes: dict[str, list[str]] = {}
        self.warnings: list[str] = []
        self._parse_ranks()
        self._parse_aliases()
        self._parse_declarations()
        self._parse_contracts()

    def _parse_ranks(self):
        text = self.files.get(LOCKRANK_HEADER)
        if text is None:
            # Fixture trees carry their own rank table in any header.
            for rel, t in self.files.items():
                if "enum class LockRank" in t:
                    text = t
                    break
        if text is None:
            self.warnings.append("no LockRank enum found; rank checks limited")
            return
        in_enum = False
        for line in strip_comments(text).splitlines():
            if "enum class LockRank" in line:
                in_enum = True
                continue
            if in_enum:
                if "};" in line:
                    break
                m = RANK_ENUM_RE.match(line)
                if m:
                    self.ranks["k" + m.group(1)] = int(m.group(2))

    def _parse_aliases(self):
        for t in self.code.values():
            for m in USING_ALIAS_RE.finditer(t):
                self.aliases.add(m.group(1))

    def _parse_declarations(self):
        named_re, unnamed_re, array_re, accessor_re = build_decl_regexes(self.aliases)
        for rel, raw in self.files.items():
            code = self.code[rel]
            members: dict[str, str] = {}
            incl = [INCLUDE_RE.match(l).group(1) for l in raw.splitlines()
                    if INCLUDE_RE.match(l)]
            self.includes[rel] = incl
            named_spans = []
            for m in named_re.finditer(raw):
                cls = self._intern(m.group("enum"), m.group("name"), rel)
                if cls is None:
                    continue
                line = raw.count("\n", 0, m.start()) + 1
                self.decls.append(Declaration(cls, rel, line, m.group("member")))
                members[m.group("member")] = cls.name
                named_spans.append((m.start(), m.end()))
            unnamed_classes = []
            for m in unnamed_re.finditer(raw):
                if any(s <= m.start() < e for s, e in named_spans):
                    continue
                cls = self._intern(m.group("enum"), m.group("name"), rel)
                if cls is None:
                    continue
                line = raw.count("\n", 0, m.start()) + 1
                self.decls.append(Declaration(cls, rel, line, ""))
                unnamed_classes.append(cls)
            # Bind a lone unnamed construction to a lone lock-array member
            # (the stripe-lock idiom: make_acc_locks() fills acc_locks_).
            arrays = [m.group("member") for m in array_re.finditer(raw)]
            if len(arrays) == 1 and len(set(c.name for c in unnamed_classes)) == 1:
                members[arrays[0]] = unnamed_classes[0].name
            for m in accessor_re.finditer(raw):
                ret = m.group("ret").strip()
                base = re.match(r"(\w+)", ret)
                if base and base.group(1) in members:
                    fn = m.group("fn")
                    cls_name = members[base.group(1)]
                    if fn in self.accessors and self.accessors[fn] != cls_name:
                        self.warnings.append(
                            f"accessor name '{fn}' is ambiguous across classes")
                    else:
                        self.accessors[fn] = cls_name
            for m in SPINLOCK_DECL_RE.finditer(code):
                self.raw_locks.add(m.group(1))
            self.file_members[rel] = members

    def _intern(self, enum_suffix: str, name: str, rel: str) -> LockClass | None:
        enum = "k" + enum_suffix
        rank = self.ranks.get(enum)
        if rank is None:
            self.warnings.append(f"{rel}: declaration uses undeclared rank {enum}")
            rank = -1
        existing = self.classes.get(name)
        if existing is not None:
            return existing
        cls = LockClass(enum, rank, name)
        self.classes[name] = cls
        return cls

    def _parse_contracts(self):
        for rel, code in self.code.items():
            if rel in EXEMPT_FILES:
                continue
            for m in REQUIRES_DECL_RE.finditer(code):
                self.requires[m.group("fn")] = (m.group("expr").strip(), rel)
            for m in ACQUIRE_DECL_RE.finditer(code):
                self.acquires_fn[m.group("fn")] = (m.group("expr").strip(), rel)

    # -- expression resolution -------------------------------------------

    def resolve_expr(self, expr: str, rel: str) -> str | None:
        """Map a lock expression to a lock-class runtime name.

        Returns the class name, 'RAW' for deliberate unranked leaf locks,
        'DYNAMIC' for reference parameters, or None when unresolvable.
        """
        expr = expr.strip()
        # accessor call: inst.lock(), me.internal_lock(), tw.accumulate_lock(d)
        m = re.search(r"(?:\.|->)(\w+)\s*\(", expr)
        if m and m.group(1) in self.accessors:
            return self.accessors[m.group(1)]
        if m is None:
            m2 = re.match(r"(\w+)\s*\(", expr)
            if m2 and m2.group(1) in self.accessors:
                return self.accessors[m2.group(1)]
        # member access or bare identifier: ln.lock, lock_, registry_lock
        tail = re.search(r"(\w+)\s*$", expr)
        if tail:
            ident = tail.group(1)
            if ident in self.raw_locks:
                return "RAW"
            # own file, then directly-included fairmpi headers
            candidates = []
            scope = [rel] + [
                inc_rel
                for inc in self.includes.get(rel, [])
                for inc_rel in (f"include/{inc}",)
                if inc_rel in self.file_members
            ]
            for f in scope:
                cls = self.file_members.get(f, {}).get(ident)
                if cls is not None and cls not in candidates:
                    candidates.append(cls)
            if len(candidates) == 1:
                return candidates[0]
            if len(candidates) > 1:
                self.warnings.append(
                    f"{rel}: ambiguous lock identifier '{ident}' -> {candidates}")
                return None
        return None


def scan_file(model: LexicalModel, rel: str, edges: list[Edge],
              functions: dict[str, FunctionInfo], unresolved: list[str]):
    code = model.code[rel]
    lines = code.splitlines()

    held: list[tuple[str, int]] = []  # (class_name, scope_depth of guard decl)
    depth = 0
    # (FunctionInfo, body_depth, header_text)
    fn_stack: list[tuple[FunctionInfo, int, str]] = []
    pending_header = ""  # accumulating candidate function-header text

    def current_fn() -> FunctionInfo | None:
        return fn_stack[-1][0] if fn_stack else None

    def add_acquire(cls_name: str, blocking: bool, line_no: int):
        reacquire = any(h == cls_name for h, _ in held)
        if reacquire and blocking:
            edges.append(Edge(cls_name, cls_name, True, rel, line_no))
        for held_cls, _ in held:
            if held_cls != cls_name:
                edges.append(Edge(held_cls, cls_name, blocking, rel, line_no))
        fn = current_fn()
        if fn is not None:
            fn.direct.add((cls_name, blocking))

    def classify_adopt(idx: int) -> bool:
        """Blocking-ness of an adopting guard, from the preceding idiom:
        a bare .lock() or a FAIRMPI_ACQUIRE-annotated helper means the
        acquisition could block; a lone try_lock() probe cannot."""
        window = "\n".join(lines[max(0, idx - 12): idx])
        if re.search(r"\.lock\(\s*\)\s*;", window):
            return True
        for fname in model.acquires_fn:
            if re.search(r"\b" + re.escape(fname) + r"\s*\(", window):
                return True
        if "try_lock" in window:
            return False
        return True  # conservative

    for idx, line in enumerate(lines):
        line_no = idx + 1
        opens = line.count("{")
        closes = line.count("}")

        # --- function-boundary tracking (outermost bodies only) ---
        if not fn_stack:
            pending_header += " " + line.strip()
            if len(pending_header) > 600:
                pending_header = pending_header[-600:]
            if opens:
                head = ATTR_CLAUSE_RE.sub(" ", pending_header.split("{", 1)[0])
                m = None
                for cand in re.finditer(r"(?:(\w+)::)?(~?\w+)\s*\(", head):
                    if cand.group(2) not in CXX_KEYWORDS:
                        m = cand
                if m is not None and ";" not in head.rsplit(")", 1)[-1]:
                    fname = m.group(2)
                    fi = functions.setdefault(
                        fname, FunctionInfo(fname, rel, line_no))
                    fn_stack.append((fi, depth + 1, head))
                    # Seed held context from the REQUIRES contract declared
                    # (usually in the header) for this function.
                    req = model.requires.get(fname)
                    if req:
                        expr, decl_file = req
                        cls = model.resolve_expr(expr, decl_file)
                        if cls is None:
                            cls = model.resolve_expr(expr, rel)
                        if cls and cls not in ("RAW", "DYNAMIC"):
                            held.append((cls, depth + 1))
                pending_header = ""

        # --- guard declarations ---
        matched_guard = False
        for m in GUARD_RE.finditer(line):
            matched_guard = True
            expr = m.group("expr").strip()
            adopting = ADOPT_ARG_RE.search(line) is not None
            cls = model.resolve_expr(expr, rel)
            if cls is None:
                header = fn_stack[-1][2] if fn_stack else ""
                base = re.match(r"(\w+)", expr)
                if base and re.search(r"&&?\s*" + base.group(1) + r"\b", header):
                    # lock passed by reference: polymorphic site, the class
                    # is whatever the caller passed (charged at call sites)
                    continue
                unresolved.append(f"{rel}:{line_no}: unresolved lock '{expr}'")
                continue
            if cls == "RAW":
                continue  # deliberate unranked leaf (thread_slot, obs intern)
            blocking = classify_adopt(idx) if adopting else True
            add_acquire(cls, blocking, line_no)
            held.append((cls, depth))

        # --- bare .lock() statements (timed-acquire idiom) ---
        if not matched_guard and "unlock" not in line:
            bm = BARE_LOCK_RE.search(line)
            if bm and ".try_lock" not in line:
                cls = model.resolve_expr(bm.group("expr"), rel)
                if cls and cls not in ("RAW", "DYNAMIC"):
                    # Released by the adopting guard that follows; the adopt
                    # guard pushes the held state, this records the edge.
                    add_acquire(cls, True, line_no)

        # --- calls (interprocedural) ---
        fn = current_fn()
        if fn is not None:
            for cm in CALL_RE.finditer(line):
                callee = cm.group("fn")
                if callee == fn.name or callee in CXX_KEYWORDS \
                        or callee in CALL_STOPLIST:
                    continue
                fn.calls.add(callee)
                if held:
                    fn.call_sites.append(
                        (callee, [h for h, _ in held], rel, line_no))

        # --- scope closing ---
        depth += opens - closes
        if closes:
            held = [(c, d) for (c, d) in held if d <= depth]
            while fn_stack and depth < fn_stack[-1][1]:
                fn_stack.pop()


def propagate(functions: dict[str, FunctionInfo], model: LexicalModel,
              edges: list[Edge]):
    """Fixpoint closure of per-function acquisition summaries, then edge
    emission for calls made while holding a lock."""
    # Functions with a REQUIRES contract do not *acquire* the required lock;
    # their direct/transitive sets list only additional acquisitions.
    trans: dict[str, set] = {n: set(fi.direct) for n, fi in functions.items()}
    changed = True
    while changed:
        changed = False
        for n, fi in functions.items():
            for callee in fi.calls:
                sub = trans.get(callee)
                if sub and not sub <= trans[n]:
                    trans[n] |= sub
                    changed = True
    interesting = {n for n, acq in trans.items() if acq}
    for n, fi in functions.items():
        for callee, held_classes, site_file, line in fi.call_sites:
            if callee not in interesting:
                continue
            for cls_name, blocking in trans[callee]:
                for held_cls in held_classes:
                    if held_cls == cls_name:
                        continue
                    edges.append(Edge(held_cls, cls_name, blocking,
                                      site_file, line, via=callee))
    return trans


# ------------------------------------------------------------------ checks


def dedupe(edges: list[Edge]) -> list[Edge]:
    seen = {}
    for e in edges:
        key = (e.src, e.dst, e.blocking)
        if key not in seen:
            seen[key] = e
    return list(seen.values())


def check(model: LexicalModel, edges: list[Edge]) -> list[Violation]:
    v: list[Violation] = []
    classes = model.classes

    # Rank monotonicity on blocking edges (equal rank across distinct
    # classes is tolerated, as at runtime).
    for e in edges:
        if not e.blocking:
            continue
        a, b = classes.get(e.src), classes.get(e.dst)
        if a is None or b is None:
            continue
        if e.src == e.dst:
            v.append(Violation(
                "self-deadlock",
                f"{e.file}:{e.line}: blocking re-acquisition of "
                f"'{e.src}' while already held"))
            continue
        if a.rank > b.rank:
            via = f" (via {e.via})" if e.via else ""
            v.append(Violation(
                "rank-inversion",
                f"{e.file}:{e.line}: '{e.src}' (rank {a.rank}) held while "
                f"blocking on '{e.dst}' (rank {b.rank}){via}"))

    # Cycle check over blocking edges (catches same-rank inversions).
    adj: dict[str, set] = {}
    for e in edges:
        if e.blocking and e.src != e.dst:
            adj.setdefault(e.src, set()).add(e.dst)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in set(adj) | {d for s in adj.values() for d in s}}
    stack_path: list[str] = []

    def dfs(n: str) -> list[str] | None:
        color[n] = GREY
        stack_path.append(n)
        for m in adj.get(n, ()):  # noqa: B007
            if color[m] == GREY:
                return stack_path[stack_path.index(m):] + [m]
            if color[m] == WHITE:
                cyc = dfs(m)
                if cyc:
                    return cyc
        stack_path.pop()
        color[n] = BLACK
        return None

    for n in list(color):
        if color[n] == WHITE:
            cyc = dfs(n)
            if cyc:
                v.append(Violation(
                    "cycle", "lock-order cycle: " + " -> ".join(cyc)))
                break

    # Declared-vs-observed cross-check.
    declared_enums = set(model.ranks) - {"kTestBase"}
    observed_enums = {c.enum for c in classes.values()}
    for enum in sorted(declared_enums - observed_enums):
        v.append(Violation(
            "unused-rank",
            f"LockRank::{enum} is declared but no RankedLock in the scanned "
            f"tree uses it"))
    for cls in classes.values():
        if cls.rank < 0:
            v.append(Violation(
                "undeclared-rank",
                f"lock class '{cls.name}' uses rank enumerator {cls.enum} "
                f"that is not in the LockRank table"))
    return v


# ----------------------------------------------------------------- outputs


def to_json(model: LexicalModel, edges: list[Edge], violations: list[Violation],
            unresolved: list[str]) -> dict:
    return {
        "ranks": dict(sorted(model.ranks.items(), key=lambda kv: kv[1])),
        "classes": [
            {"name": c.name, "enum": c.enum, "rank": c.rank,
             "declared_in": sorted({d.file for d in model.decls
                                    if d.cls.name == c.name})}
            for c in sorted(model.classes.values(), key=lambda c: (c.rank, c.name))
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "blocking": e.blocking,
             "site": f"{e.file}:{e.line}", "via": e.via}
            for e in sorted(edges, key=lambda e: (e.src, e.dst))
        ],
        "violations": [{"kind": x.kind, "message": x.message} for x in violations],
        "unresolved_sites": unresolved,
    }


def to_dot(model: LexicalModel, edges: list[Edge]) -> str:
    out = ["digraph lock_order {", '  rankdir="LR";',
           '  node [shape=box, fontname="monospace"];']
    for c in sorted(model.classes.values(), key=lambda c: c.rank):
        out.append(f'  "{c.name}" [label="{c.name}\\nrank {c.rank}"];')
    for e in dedupe(edges):
        style = "solid" if e.blocking else "dashed"
        out.append(f'  "{e.src}" -> "{e.dst}" [style={style}];')
    out.append("}")
    return "\n".join(out) + "\n"


MD_BEGIN = "<!-- lockgraph:ranks:begin -->"
MD_END = "<!-- lockgraph:ranks:end -->"


def to_markdown(model: LexicalModel) -> str:
    rows = ["| rank | enumerator | lock class | declared in |",
            "|-----:|------------|------------|-------------|"]
    for c in sorted(model.classes.values(), key=lambda c: (c.rank, c.name)):
        files = ", ".join(sorted({f"`{d.file}`" for d in model.decls
                                  if d.cls.name == c.name}))
        rows.append(f"| {c.rank} | `{c.enum}` | `{c.name}` | {files} |")
    return "\n".join(rows) + "\n"


def check_design(model: LexicalModel, design_path: pathlib.Path) -> list[str]:
    problems = []
    try:
        text = design_path.read_text(encoding="utf-8")
    except OSError as e:
        return [f"cannot read {design_path}: {e}"]
    if MD_BEGIN not in text or MD_END not in text:
        return [f"{design_path} lacks the {MD_BEGIN} / {MD_END} markers"]
    current = text.split(MD_BEGIN, 1)[1].split(MD_END, 1)[0].strip()
    expected = to_markdown(model).strip()
    if current != expected:
        problems.append(
            f"{design_path}: generated lock-rank table is stale — regenerate "
            f"with: python3 tools/lock_graph.py --update-design {design_path}")
    return problems


def update_design(model: LexicalModel, design_path: pathlib.Path) -> None:
    text = design_path.read_text(encoding="utf-8")
    head, rest = text.split(MD_BEGIN, 1)
    _, tail = rest.split(MD_END, 1)
    design_path.write_text(
        head + MD_BEGIN + "\n" + to_markdown(model) + MD_END + tail,
        encoding="utf-8")


# ---------------------------------------------------------- libclang engine


def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def run_libclang(model: LexicalModel, compdb_dir: str,
                 edges: list[Edge], unresolved: list[str]) -> bool:
    """AST-based acquisition scan. Best-effort: returns False (caller falls
    back to lexical) on any environment problem."""
    try:
        from clang import cindex
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
        index = cindex.Index.create()
    except Exception as e:  # missing libclang.so, bad compdb, ...
        print(f"lock_graph: libclang unavailable ({e}); falling back to lexical",
              file=sys.stderr)
        return False

    def guards_in(tu, rel):
        held: list[tuple[str, int]] = []  # (class, end_offset)
        for cur in tu.cursor.walk_preorder():
            if cur.kind != cindex.CursorKind.VAR_DECL:
                continue
            if "LockGuard" not in (cur.type.spelling or ""):
                continue
            toks = " ".join(t.spelling for t in cur.get_tokens())
            m = re.search(r"\(\s*(.*?)\s*(?:,\s*(?:fairmpi::)?adopt_lock)?\s*\)", toks)
            if not m:
                continue
            cls = model.resolve_expr(m.group(1), rel)
            if cls in (None, "RAW", "DYNAMIC"):
                continue
            end = cur.semantic_parent.extent.end.offset if cur.semantic_parent else 1 << 60
            line = cur.location.line
            start = cur.location.offset
            held[:] = [(c, e) for c, e in held if e > start]
            for held_cls, _ in held:
                if held_cls != cls:
                    edges.append(Edge(held_cls, cls, True, rel, line))
            held.append((cls, end))

    ok_any = False
    for rel in model.files:
        if not rel.endswith((".cpp", ".cc", ".cxx")):
            continue
        cmds = db.getCompileCommands(str(model.root / rel))
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:-1] if a != "-c"]
        try:
            tu = index.parse(str(model.root / rel), args=args)
            guards_in(tu, rel)
            ok_any = True
        except Exception as e:
            print(f"lock_graph: libclang parse failed for {rel}: {e}",
                  file=sys.stderr)
    return ok_any


# -------------------------------------------------------------------- main


def load_files(root: pathlib.Path, scan_dirs) -> dict[str, str]:
    files = {}
    for d in scan_dirs:
        base = root / d
        if not base.is_dir():
            continue
        for f in sorted(base.rglob("*")):
            if f.suffix in CXX_SUFFIXES:
                rel = f.relative_to(root).as_posix()
                files[rel] = f.read_text(encoding="utf-8", errors="replace")
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--scan", action="append", default=None,
                        help="directories to scan (default: include src)")
    parser.add_argument("--engine", choices=("auto", "libclang", "lexical"),
                        default="auto")
    parser.add_argument("--compdb", default="build",
                        help="compile_commands.json directory (libclang engine)")
    parser.add_argument("--json", metavar="FILE", help="write graph JSON")
    parser.add_argument("--dot", metavar="FILE", help="write Graphviz DOT")
    parser.add_argument("--markdown", metavar="FILE",
                        help="write the lock-rank markdown table ('-' = stdout)")
    parser.add_argument("--check-design", metavar="DESIGN_MD",
                        help="fail when the embedded rank table is stale")
    parser.add_argument("--update-design", metavar="DESIGN_MD",
                        help="rewrite the embedded rank table in place")
    parser.add_argument("--strict-unresolved", action="store_true",
                        help="treat unresolved acquisition sites as failures")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    if not root.is_dir():
        print(f"lock_graph: no such root: {root}", file=sys.stderr)
        return 2
    scan_dirs = tuple(args.scan) if args.scan else DEFAULT_SCAN_DIRS
    files = load_files(root, scan_dirs)
    if not files:
        print(f"lock_graph: nothing to scan under {root} {scan_dirs}",
              file=sys.stderr)
        return 2

    model = LexicalModel(root, scan_dirs, files)

    edges: list[Edge] = []
    unresolved: list[str] = []
    functions: dict[str, FunctionInfo] = {}

    used_libclang = False
    if args.engine in ("auto", "libclang") and libclang_available():
        used_libclang = run_libclang(model, args.compdb, edges, unresolved)
    elif args.engine == "libclang":
        print("lock_graph: python clang bindings not importable; "
              "falling back to lexical engine", file=sys.stderr)

    # The lexical engine always runs: it owns REQUIRES seeding and the
    # interprocedural pass; with libclang it adds AST-confirmed edges on top.
    for rel in model.files:
        if rel in EXEMPT_FILES:
            continue
        scan_file(model, rel, edges, functions, unresolved)
    propagate(functions, model, edges)

    edges = dedupe(edges)
    violations = check(model, edges)

    design_problems: list[str] = []
    if args.check_design:
        design_problems = check_design(model, pathlib.Path(args.check_design))
    if args.update_design:
        update_design(model, pathlib.Path(args.update_design))

    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(to_json(model, edges, violations, unresolved), indent=2)
            + "\n", encoding="utf-8")
    if args.dot:
        pathlib.Path(args.dot).write_text(to_dot(model, edges), encoding="utf-8")
    if args.markdown:
        md = to_markdown(model)
        if args.markdown == "-":
            sys.stdout.write(md)
        else:
            pathlib.Path(args.markdown).write_text(md, encoding="utf-8")

    if not args.quiet:
        blocking = sum(1 for e in edges if e.blocking)
        print(f"lock_graph: engine={'libclang+lexical' if used_libclang else 'lexical'} "
              f"classes={len(model.classes)} edges={len(edges)} "
              f"(blocking={blocking}) ranks={len(model.ranks)}")
        for w in model.warnings:
            print(f"lock_graph: warning: {w}", file=sys.stderr)
    for u in unresolved:
        print(f"lock_graph: unresolved: {u}", file=sys.stderr)
    for x in violations:
        print(f"lock_graph: VIOLATION [{x.kind}] {x.message}", file=sys.stderr)
    for p in design_problems:
        print(f"lock_graph: DESIGN DRIFT: {p}", file=sys.stderr)

    failed = bool(violations) or bool(design_problems) or (
        args.strict_unresolved and unresolved)
    if not failed and not args.quiet:
        print("lock_graph: clean (rank hierarchy statically consistent)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
