#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files (see bench_to_json.py) and fail on
regressions.

A series regresses when its current real_time_ns exceeds the baseline by
more than --threshold (default 15%). Series present on only one side are
reported but never fail the comparison (benches come and go across PRs).

Microbench timings on shared CI hosts are noisy; the 15% bar plus the
non-gating CI wiring (.github/workflows/ci.yml) make this a report, not a
merge blocker — run it locally on a quiet machine when it flags something.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]

Exit status: 0 when no series regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    data = json.loads(path.read_text())
    if "series" not in data:
        raise SystemExit(f"bench_compare: {path} is not a bench_to_json file")
    return data


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", type=Path)
    ap.add_argument("current", type=Path)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated slowdown fraction (default 0.15)")
    args = ap.parse_args()

    base = load(args.baseline)["series"]
    cur = load(args.current)["series"]

    regressions = []
    rows = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            rows.append((name, None, cur[name]["real_time_ns"], "new"))
            continue
        if name not in cur:
            rows.append((name, base[name]["real_time_ns"], None, "removed"))
            continue
        b = base[name]["real_time_ns"]
        c = cur[name]["real_time_ns"]
        change = (c - b) / b if b else 0.0
        verdict = "ok"
        if change > args.threshold:
            verdict = "REGRESSION"
            regressions.append((name, change))
        elif change < -args.threshold:
            verdict = "improved"
        rows.append((name, b, c, f"{change:+.1%} {verdict}"))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  change")
    for name, b, c, note in rows:
        bs = f"{b:.1f}ns" if b is not None else "-"
        cs = f"{c:.1f}ns" if c is not None else "-"
        print(f"{name:<{width}}  {bs:>12}  {cs:>12}  {note}")

    if regressions:
        print(f"\nbench_compare: {len(regressions)} series regressed beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, change in regressions:
            print(f"  {name}: {change:+.1%}", file=sys.stderr)
        raise SystemExit(1)
    print("\nbench_compare: no regressions")


if __name__ == "__main__":
    main()
