// Reproduces paper Figure 6: RMA-MT performance (MPI_Put +
// MPI_Win_flush) on the Trinitite Haswell model — message sizes 1 B to
// 16 KiB, 1-32 threads, 32 CRIs (ugni creates one per core), single vs
// dedicated vs round-robin instances, serial vs concurrent progress.
#include "rma_figure.hpp"

int main(int argc, char** argv) {
  fairmpi::bench::RmaFigureOptions opt;
  opt.fig_prefix = "fig6";
  opt.arch = "Haswell";
  opt.costs = fairmpi::model::trinitite_haswell();
  opt.instances = 32;
  opt.max_threads = 32;
  return fairmpi::bench::run_rma_figure(argc, argv, opt);
}
