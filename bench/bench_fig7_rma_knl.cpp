// Reproduces paper Figure 7: RMA-MT performance (MPI_Put +
// MPI_Win_flush) on the Trinitite KNL model — slow serial cores (~3x
// Haswell per-op cost), 72 CRIs (one per available core), 1-64 threads.
#include "rma_figure.hpp"

int main(int argc, char** argv) {
  fairmpi::bench::RmaFigureOptions opt;
  opt.fig_prefix = "fig7";
  opt.arch = "KNL";
  opt.costs = fairmpi::model::trinitite_knl();
  opt.instances = 72;
  opt.max_threads = 64;
  return fairmpi::bench::run_rma_figure(argc, argv, opt);
}
