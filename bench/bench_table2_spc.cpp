// Reproduces paper Table II: software-performance-counter readings at 20
// thread pairs with dedicated assignment — out-of-sequence message count
// and percentage plus total matching time — for the nine configurations of
// Figure 3 ({serial, concurrent, concurrent+matching} x {1, 10, 20}
// instances).
#include <cstdio>
#include <string>
#include <thread>

#include "fairmpi/benchsupport/report.hpp"
#include "fairmpi/common/cli.hpp"
#include "fairmpi/common/table.hpp"
#include "fairmpi/core/universe.hpp"
#include "fairmpi/model/msgrate.hpp"
#include "fairmpi/obs/contention.hpp"
#include "fairmpi/obs/utilization.hpp"

using namespace fairmpi;

int main(int argc, char** argv) {
  Cli cli("bench_table2_spc",
          "Table II: SPC counters (out-of-sequence, match time) at 20 thread pairs");
  auto& pairs_opt = cli.opt_int("pairs", 20, "thread pairs (paper: 20)");
  auto& seed = cli.opt_int("seed", 1, "RNG seed");
  auto& full = cli.opt_flag("full", "longer measurement window");
  auto& csv_dir = cli.opt_str("csv", "", "directory for CSV dump (empty = none)");
  cli.parse(argc, argv);

  const int pairs = static_cast<int>(*pairs_opt);
  struct Design {
    const char* name;
    progress::ProgressMode mode;
    bool comm_per_pair;
  };
  const Design designs[] = {
      {"Serial Progress", progress::ProgressMode::kSerial, false},
      {"Concurrent Progress", progress::ProgressMode::kConcurrent, false},
      {"Concurrent Progress + Matching", progress::ProgressMode::kConcurrent, true},
  };

  Table table({"design", "instances", "total messages", "out-of-sequence",
               "out-of-sequence %", "match time (ms)"});
  benchsupport::CheckList checks;
  double oos_pct[3][3] = {};
  double match_ms[3][3] = {};
  std::uint64_t delivered_ref[3][3] = {};

  for (int d = 0; d < 3; ++d) {
    int col = 0;
    for (const int instances : {1, 10, 20}) {
      model::MsgRateConfig cfg;
      cfg.pairs = pairs;
      cfg.instances = instances;
      cfg.assignment = cri::Assignment::kDedicated;
      cfg.progress = designs[d].mode;
      cfg.comm_per_pair = designs[d].comm_per_pair;
      cfg.seed = static_cast<std::uint64_t>(*seed);
      if (*full) cfg.measure_ns = 30'000'000;
      const model::MsgRateResult r = model::run_msgrate(cfg);

      oos_pct[d][col] = 100.0 * r.oos_fraction;
      match_ms[d][col] = static_cast<double>(r.match_time_ns) / 1e6;
      delivered_ref[d][col] = r.delivered;
      char oosb[32], pctb[32], matchb[32], totb[32];
      std::snprintf(totb, sizeof totb, "%llu",
                    static_cast<unsigned long long>(r.delivered));
      std::snprintf(oosb, sizeof oosb, "%llu",
                    static_cast<unsigned long long>(r.out_of_sequence));
      std::snprintf(pctb, sizeof pctb, "%.2f%%", oos_pct[d][col]);
      std::snprintf(matchb, sizeof matchb, "%.1f", match_ms[d][col]);
      table.add_row({designs[d].name, std::to_string(instances), totb, oosb, pctb, matchb});
      ++col;
    }
  }

  std::printf("Table II reproduction (%d thread pairs, dedicated assignment)\n%s\n",
              pairs, table.render().c_str());

  // Paper's headline observations.
  checks.expect(oos_pct[0][0] > 60.0 && oos_pct[0][2] > 60.0,
                "serial progress: most messages arrive out of sequence (paper: 83-90%)");
  checks.expect(oos_pct[1][2] >= 0.9 * oos_pct[0][2],
                "concurrent progress does not reduce out-of-sequence arrivals");
  checks.expect(oos_pct[2][2] < 1.0,
                "comm-per-pair + dedicated: out-of-sequence collapses to ~0 (paper: 0)");
  const double per_msg_serial =
      match_ms[0][2] / static_cast<double>(delivered_ref[0][2]);
  const double per_msg_conc = match_ms[1][2] / static_cast<double>(delivered_ref[1][2]);
  const double per_msg_match = match_ms[2][2] / static_cast<double>(delivered_ref[2][2]);
  checks.expect_ratio_at_least(per_msg_conc, per_msg_serial, 1.7,
                               "concurrent progress inflates matching time (paper: ~3x)");
  checks.expect(per_msg_match < 0.6 * per_msg_serial,
                "concurrent matching makes match time minimal");
  std::puts(checks.render().c_str());

  // Reliability-layer SPC counters (Table II extension). The simulator
  // above runs on a perfect fabric, so these come from a short exchange on
  // the real backend, which honours the FAIRMPI_FAULT_* environment: under
  // the CI chaos profile this section shows the protocol at work
  // (retransmits, dup discards, acks); on a pristine fabric the fault rows
  // are all zero.
  {
    // Observability on for the real exchange: the contention and per-CRI
    // utilization tables below come from the obs layer the engine ships
    // with (FAIRMPI_OBS=1 in deployment), not from bench-side counters.
    obs::set_enabled(true);
    Universe uni(Config{});
    constexpr std::uint32_t kExchanged = 2000;
    std::thread tx([&uni] {
      auto w0 = uni.rank(0).world();
      for (std::uint32_t i = 0; i < kExchanged; ++i) {
        w0.send(1, /*tag=*/0, &i, sizeof i);
      }
    });
    auto w1 = uni.rank(1).world();
    for (std::uint32_t i = 0; i < kExchanged; ++i) {
      std::uint32_t sink = 0;
      w1.recv(0, 0, &sink, sizeof sink);
    }
    tx.join();

    const spc::Snapshot agg = uni.aggregate_counters();
    Table rel({"reliability counter", "value"});
    for (const spc::Counter c :
         {spc::Counter::kHeaderDrops, spc::Counter::kCsumDrops,
          spc::Counter::kDupDiscards, spc::Counter::kRetransmits,
          spc::Counter::kAcksSent, spc::Counter::kAcksReceived,
          spc::Counter::kReliabilityErrors, spc::Counter::kWatchdogStalls}) {
      rel.add_row({spc::counter_name(c), std::to_string(agg.get(c))});
    }
    std::printf("Reliability SPCs, real backend, %u messages (faults: %s)\n%s\n",
                kExchanged, uni.config().faults.any() ? "on" : "off",
                rel.render().c_str());

    // Lock contention by class (Table II context: where the §II-C wall
    // actually spends its wait time) and per-CRI utilization for the same
    // exchange.
    Table cont({"lock class", "acquires", "contended", "wait (us)",
                "trylock fails"});
    for (const obs::ClassContention& c : obs::contention_snapshot()) {
      char waitb[32];
      std::snprintf(waitb, sizeof waitb, "%.1f",
                    static_cast<double>(c.wait_ns) / 1e3);
      cont.add_row({c.name, std::to_string(c.acquires),
                    std::to_string(c.contended), waitb,
                    std::to_string(c.trylock_fails)});
    }
    std::printf("Lock contention (obs layer)\n%s\n", cont.render().c_str());

    Table util({"instance", "injections", "pkts drained", "drain visits",
                "own-trylock miss", "orphan sweeps"});
    for (int r = 0; r < uni.num_ranks(); ++r) {
      cri::CriPool& pool = uni.rank(r).pool();
      for (int i = 0; i < pool.size(); ++i) {
        const obs::InstanceUtilization u = pool.instance(i).stats().snapshot();
        util.add_row({"r" + std::to_string(r) + ".cri" + std::to_string(i),
                      std::to_string(u.injections),
                      std::to_string(u.packets_drained),
                      std::to_string(u.drain_visits),
                      std::to_string(u.own_trylock_misses),
                      std::to_string(u.orphan_sweeps)});
      }
    }
    std::printf("Per-CRI utilization (obs layer)\n%s\n", util.render().c_str());
    obs::set_enabled(false);
  }

  if (!(*csv_dir).empty()) {
    benchsupport::FigureReport fr("table2", "Table II raw values", "instances",
                                  "oos_pct");
    for (int d = 0; d < 3; ++d) {
      int col = 0;
      for (const int instances : {1, 10, 20}) {
        fr.add_point(std::string(designs[d].name) + " oos%", instances, oos_pct[d][col]);
        fr.add_point(std::string(designs[d].name) + " match_ms", instances,
                     match_ms[d][col]);
        ++col;
      }
    }
    fr.write_csv(*csv_dir);
  }
  return checks.failures() == 0 ? 0 : 1;
}
