// Ablation: the matching engine's cost structure — in-order vs
// out-of-sequence arrival, posted-queue depth, overtaking, wildcard tags.
// These are the per-envelope costs §II-C identifies as the multithreaded
// bottleneck.
#include <benchmark/benchmark.h>

#include <vector>

#include "fairmpi/match/match_engine.hpp"

namespace {

using fairmpi::fabric::Opcode;
using fairmpi::fabric::Packet;
using fairmpi::match::MatchEngine;
using fairmpi::p2p::kAnyTag;
using fairmpi::p2p::Request;

Packet make_eager(std::uint32_t seq, int tag) {
  Packet pkt;
  pkt.hdr.opcode = Opcode::kEager;
  pkt.hdr.src_rank = 1;
  pkt.hdr.tag = tag;
  pkt.hdr.seq = seq;
  return pkt;
}

/// In-order arrival into a pre-posted receive: the fast path.
void BM_MatchInOrder(benchmark::State& state) {
  fairmpi::spc::CounterSet spc;
  MatchEngine eng(2, /*overtaking=*/false, spc);
  std::uint32_t seq = 0;
  std::uint32_t buf = 0;
  for (auto _ : state) {
    Request req;
    req.init_recv(&buf, sizeof buf, 1, 7);
    eng.post(&req);
    eng.incoming(make_eager(seq++, 7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchInOrder);

/// Reversed pairs: every second envelope is out of sequence and must be
/// buffered and drained — the allocation §II-C calls costly.
void BM_MatchOutOfSequencePairs(benchmark::State& state) {
  fairmpi::spc::CounterSet spc;
  MatchEngine eng(2, false, spc);
  std::uint32_t seq = 0;
  std::uint32_t buf = 0;
  for (auto _ : state) {
    Request r1, r2;
    r1.init_recv(&buf, sizeof buf, 1, 7);
    r2.init_recv(&buf, sizeof buf, 1, 7);
    eng.post(&r1);
    eng.post(&r2);
    eng.incoming(make_eager(seq + 1, 7));  // future: buffered
    eng.incoming(make_eager(seq, 7));      // fills the gap, drains
    seq += 2;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MatchOutOfSequencePairs);

/// Same stream with overtaking: no sequence validation, no buffering.
void BM_MatchOvertaking(benchmark::State& state) {
  fairmpi::spc::CounterSet spc;
  MatchEngine eng(2, /*overtaking=*/true, spc);
  std::uint32_t seq = 0;
  std::uint32_t buf = 0;
  for (auto _ : state) {
    Request r1, r2;
    r1.init_recv(&buf, sizeof buf, 1, 7);
    r2.init_recv(&buf, sizeof buf, 1, 7);
    eng.post(&r1);
    eng.post(&r2);
    eng.incoming(make_eager(seq + 1, 7));
    eng.incoming(make_eager(seq, 7));
    seq += 2;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MatchOvertaking);

/// Queue-search scaling: depth = posted receives with non-matching tags
/// ahead of the match (the linear scan §IV-D discusses).
void BM_MatchQueueSearchDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  fairmpi::spc::CounterSet spc;
  MatchEngine eng(2, false, spc);
  std::uint32_t buf = 0;
  // Decoys that never match (tag 1..depth).
  std::vector<Request> decoys(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    decoys[static_cast<std::size_t>(i)].init_recv(&buf, sizeof buf, 1, 1 + i);
    eng.post(&decoys[static_cast<std::size_t>(i)]);
  }
  std::uint32_t seq = 0;
  const int hot_tag = depth + 100;
  for (auto _ : state) {
    Request req;
    req.init_recv(&buf, sizeof buf, 1, hot_tag);
    eng.post(&req);
    eng.incoming(make_eager(seq++, hot_tag));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchQueueSearchDepth)->Arg(0)->Arg(16)->Arg(128)->Arg(1024);

/// Wildcard-tag receives skip the queue search (Fig. 4's trick): the
/// incoming envelope always matches the first posted entry.
void BM_MatchAnyTag(benchmark::State& state) {
  fairmpi::spc::CounterSet spc;
  MatchEngine eng(2, true, spc);
  std::uint32_t seq = 0;
  std::uint32_t buf = 0;
  for (auto _ : state) {
    Request req;
    req.init_recv(&buf, sizeof buf, 1, kAnyTag);
    eng.post(&req);
    eng.incoming(make_eager(seq++, 12345));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchAnyTag);

/// Unexpected path: envelope arrives first, receive posted after.
void BM_MatchUnexpectedThenPost(benchmark::State& state) {
  fairmpi::spc::CounterSet spc;
  MatchEngine eng(2, false, spc);
  std::uint32_t seq = 0;
  std::uint32_t buf = 0;
  for (auto _ : state) {
    eng.incoming(make_eager(seq++, 7));
    Request req;
    req.init_recv(&buf, sizeof buf, 1, 7);
    eng.post(&req);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchUnexpectedThenPost);

}  // namespace
