// OSU-MT-style multithreaded collective latency (§5i tentpole bench).
//
// Mirrors the OSU multithreaded collective benchmarks the paper's
// methodology builds on: 2 ranks, T threads per rank, thread t of every
// rank on its own communicator (the §III-F per-thread-communicator trick),
// measuring the wall time for all T collectives to complete. Payloads are
// self-checked every operation — a tag-lane mixup corrupts data
// deterministically and fails the bench via SkipWithError rather than
// producing a fast-but-wrong number.
//
// Two backends, one binary:
//   - BM_OsuMtColl*: the real engine over the in-process fabric. Honest
//     wall-clock latency, but thread-scheduling noise on shared hosts.
//   - BM_ModelColl*: the closed-form model (model/coll.hpp) reported
//     through manual time. Deterministic nanoseconds — these series anchor
//     the committed BENCH_osu_coll.json baseline, including the acceptance
//     pair: Allreduce8Threads on per-thread communicators vs 8 serialized
//     allreduces on one communicator.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "fairmpi/coll/coll.hpp"
#include "fairmpi/model/coll.hpp"

namespace {

using fairmpi::CommId;
using fairmpi::Communicator;
using fairmpi::Config;
using fairmpi::Universe;
using fairmpi::common::ErrorCode;

namespace coll = fairmpi::coll;

constexpr int kRanks = 2;  // OSU-MT pairwise shape

enum class Op { kBcast, kReduce, kAllreduce };

/// One timed round: ranks x threads workers, thread t of each rank on
/// communicator t, each running `reps` self-checked collectives. Returns
/// seconds from all-workers-ready to last-worker-done, or < 0 on a payload
/// or error-code failure.
double timed_round(Universe& uni, const std::vector<CommId>& comms, Op op,
                   std::size_t count, int reps) {
  const int threads = static_cast<int>(comms.size());
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::atomic<bool> bad{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(kRanks * threads));
  for (int r = 0; r < kRanks; ++r) {
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, r, t] {
        Communicator comm = uni.rank(r).comm(comms[static_cast<std::size_t>(t)]);
        std::vector<std::int64_t> buf(count), out(count);
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int it = 0; it < reps && !bad.load(std::memory_order_relaxed); ++it) {
          const std::int64_t seed = (static_cast<std::int64_t>(t) << 20) + it;
          switch (op) {
            case Op::kBcast: {
              const int root = it % kRanks;
              for (std::size_t i = 0; i < count; ++i) {
                buf[i] = r == root ? seed + static_cast<std::int64_t>(i) : -1;
              }
              if (coll::broadcast(comm, root, buf.data(), count) != ErrorCode::kOk) {
                bad.store(true);
                break;
              }
              for (std::size_t i = 0; i < count; ++i) {
                if (buf[i] != seed + static_cast<std::int64_t>(i)) bad.store(true);
              }
              break;
            }
            case Op::kReduce: {
              for (std::size_t i = 0; i < count; ++i) buf[i] = seed + r;
              if (coll::reduce(comm, 0, buf.data(), out.data(), count,
                               coll::ReduceOp::kSum) != ErrorCode::kOk) {
                bad.store(true);
                break;
              }
              if (comm.rank() == 0 && out[0] != kRanks * seed + 1) bad.store(true);
              break;
            }
            case Op::kAllreduce: {
              for (std::size_t i = 0; i < count; ++i) buf[i] = seed + r;
              if (coll::allreduce(comm, buf.data(), out.data(), count,
                                  coll::ReduceOp::kSum) != ErrorCode::kOk) {
                bad.store(true);
                break;
              }
              for (std::size_t i = 0; i < count; ++i) {
                if (out[i] != kRanks * seed + 1) bad.store(true);
              }
              break;
            }
          }
        }
        done.fetch_add(1, std::memory_order_release);
      });
    }
  }
  const int workers = kRanks * threads;
  while (ready.load() != workers) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  while (done.load(std::memory_order_acquire) != workers) std::this_thread::yield();
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& th : pool) th.join();
  if (bad.load()) return -1.0;
  return std::chrono::duration<double>(t1 - t0).count() / reps;
}

/// threads = state.range(0), bytes = state.range(1).
void osu_mt_bench(benchmark::State& state, Op op) {
  const int threads = static_cast<int>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1)) / sizeof(std::int64_t);
  Config cfg;
  cfg.num_ranks = kRanks;
  Universe uni(cfg);
  std::vector<CommId> comms(static_cast<std::size_t>(threads));
  comms[0] = fairmpi::kWorldComm;
  for (int t = 1; t < threads; ++t) {
    comms[static_cast<std::size_t>(t)] = uni.create_communicator();
  }
  const int reps = threads >= 16 ? 2 : 5;
  for (auto _ : state) {
    const double secs = timed_round(uni, comms, op, count, reps);
    if (secs < 0) {
      state.SkipWithError("payload check failed");
      return;
    }
    state.SetIterationTime(secs);
  }
  state.SetItemsProcessed(state.iterations() * threads);
}

void BM_OsuMtCollBcast(benchmark::State& state) { osu_mt_bench(state, Op::kBcast); }
void BM_OsuMtCollReduce(benchmark::State& state) { osu_mt_bench(state, Op::kReduce); }
void BM_OsuMtCollAllreduce(benchmark::State& state) {
  osu_mt_bench(state, Op::kAllreduce);
}

// 1–32 threads x {8 B, 64 KiB}. Fixed iteration counts bound runtime on
// oversubscribed hosts (every fabric series is wall-clock honest, so CI
// treats them as a non-gating report; the model series below gate drift).
#define OSU_MT_ARGS                                                        \
  ->ArgNames({"threads", "bytes"})                                         \
      ->Args({1, 8})->Args({2, 8})->Args({4, 8})->Args({8, 8})             \
      ->Args({16, 8})->Args({32, 8})                                       \
      ->Args({1, 65536})->Args({2, 65536})->Args({4, 65536})               \
      ->Args({8, 65536})->Args({16, 65536})->Args({32, 65536})             \
      ->UseManualTime()->Iterations(3)

BENCHMARK(BM_OsuMtCollBcast) OSU_MT_ARGS;
BENCHMARK(BM_OsuMtCollReduce) OSU_MT_ARGS;
BENCHMARK(BM_OsuMtCollAllreduce) OSU_MT_ARGS;

// Fabric acceptance pair, measured honestly: 8 concurrent allreduces on 8
// per-thread communicators vs the same 8 run back-to-back on one
// communicator by one thread per rank. On multi-core hosts the concurrent
// variant wins; on a 1-core runner it degrades to time-slicing and the
// deterministic model pair below carries the comparison.
void BM_OsuMtCollAllreduceConcurrent8(benchmark::State& state) {
  Config cfg;
  cfg.num_ranks = kRanks;
  Universe uni(cfg);
  std::vector<CommId> comms(8);
  comms[0] = fairmpi::kWorldComm;
  for (int t = 1; t < 8; ++t) comms[static_cast<std::size_t>(t)] = uni.create_communicator();
  for (auto _ : state) {
    const double secs = timed_round(uni, comms, Op::kAllreduce, 1024, 20);
    if (secs < 0) {
      state.SkipWithError("payload check failed");
      return;
    }
    state.SetIterationTime(secs);  // time for all 8 collectives
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_OsuMtCollAllreduceConcurrent8)->UseManualTime()->Iterations(5);

void BM_OsuMtCollAllreduceSerialized8(benchmark::State& state) {
  Config cfg;
  cfg.num_ranks = kRanks;
  Universe uni(cfg);
  const std::vector<CommId> world{fairmpi::kWorldComm};
  for (auto _ : state) {
    // One thread per rank, 8 sequential allreduces on the one communicator
    // = reps 8 x 3 to match the concurrent variant's per-iteration work.
    const double secs = timed_round(uni, world, Op::kAllreduce, 1024, 8 * 20);
    if (secs < 0) {
      state.SkipWithError("payload check failed");
      return;
    }
    state.SetIterationTime(secs * 8);  // per-8-collectives, like Concurrent8
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_OsuMtCollAllreduceSerialized8)->UseManualTime()->Iterations(5);

// --- deterministic model series (the committed-baseline anchors) ---

namespace model = fairmpi::model;

void model_bench(benchmark::State& state, model::CollAlgo algo, bool comm_per_thread) {
  model::CollModelConfig cfg;
  cfg.algo = algo;
  cfg.ranks = 8;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.payload_bytes = static_cast<std::uint64_t>(state.range(1));
  cfg.comm_per_thread = comm_per_thread;
  for (auto _ : state) {
    const double ns = model::coll_latency_ns(cfg);
    benchmark::DoNotOptimize(ns);
    state.SetIterationTime(ns * 1e-9);
  }
}

void BM_ModelCollBcastBinomial(benchmark::State& state) {
  model_bench(state, model::CollAlgo::kBinomialBcast, true);
}
void BM_ModelCollBcastPipelined(benchmark::State& state) {
  model_bench(state, model::CollAlgo::kPipelinedBcast, true);
}
void BM_ModelCollAllreduceRsag(benchmark::State& state) {
  model_bench(state, model::CollAlgo::kRsagAllreduce, true);
}
void BM_ModelCollAllreducePerThreadComms(benchmark::State& state) {
  model_bench(state, model::CollAlgo::kReduceBcast, /*comm_per_thread=*/true);
}
void BM_ModelCollAllreduceSerialized1Comm(benchmark::State& state) {
  model_bench(state, model::CollAlgo::kReduceBcast, /*comm_per_thread=*/false);
}

#define MODEL_ARGS ->ArgNames({"threads", "bytes"})->UseManualTime()->Iterations(1)

BENCHMARK(BM_ModelCollBcastBinomial) MODEL_ARGS->Args({1, 8})->Args({1, 65536});
BENCHMARK(BM_ModelCollBcastPipelined) MODEL_ARGS->Args({1, 65536})->Args({1, 1 << 20});
BENCHMARK(BM_ModelCollAllreduceRsag) MODEL_ARGS->Args({1, 65536})->Args({8, 65536});
// The §5i acceptance pair at 1..32 threads: per-thread communicators scale,
// one shared communicator serializes (PerThreadComms/8 vs Serialized1Comm/8
// is the committed speedup evidence).
#define MODEL_THREAD_SWEEP \
  ->Args({1, 8})->Args({2, 8})->Args({4, 8})->Args({8, 8})->Args({16, 8})->Args({32, 8})
BENCHMARK(BM_ModelCollAllreducePerThreadComms) MODEL_ARGS MODEL_THREAD_SWEEP;
BENCHMARK(BM_ModelCollAllreduceSerialized1Comm) MODEL_ARGS MODEL_THREAD_SWEEP;

}  // namespace
