// Shared driver for the Figure 6 / Figure 7 RMA-MT sweeps: put+flush
// message rate per message size, across thread counts, for {single
// instance, dedicated, round-robin} x {serial, concurrent progress}, with
// the wire-limited theoretical peak reported alongside (the paper's black
// horizontal line).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fairmpi/benchsupport/report.hpp"
#include "fairmpi/common/cli.hpp"
#include "fairmpi/common/table.hpp"
#include "fairmpi/model/rmamt.hpp"
#include "fairmpi/rmamt/rmamt.hpp"

namespace fairmpi::bench {

struct RmaFigureOptions {
  std::string fig_prefix;   ///< "fig6" / "fig7"
  std::string arch;         ///< "Haswell" / "KNL"
  model::CostModel costs;
  int instances = 32;       ///< ugni default: one per core
  int max_threads = 32;
};

inline int run_rma_figure(int argc, char** argv, const RmaFigureOptions& opt) {
  Cli cli("bench_" + opt.fig_prefix,
          "RMA-MT put+flush message rate on " + opt.arch + " (" +
              std::string(opt.costs.name) + " model)");
  auto& full = cli.opt_flag("full", "3 repetitions per point, longer windows");
  auto& csv_dir = cli.opt_str("csv", "", "directory for CSV dumps (empty = none)");
  auto& seed = cli.opt_int("seed", 1, "base RNG seed");
  auto& sizes_opt = cli.opt_int_list("sizes", {1, 128, 1024, 4096, 16384},
                                     "message sizes in bytes");
  auto& real = cli.opt_flag("real", "also run the real engine at host scale");
  cli.parse(argc, argv);

  const int reps = *full ? 3 : 1;
  std::vector<int> thread_counts;
  for (int t = 1; t <= opt.max_threads; t *= 2) thread_counts.push_back(t);

  struct SeriesSpec {
    const char* name;
    int instances;  ///< -1 = pool size from options
    cri::Assignment assignment;
    progress::ProgressMode mode;
  };
  const SeriesSpec series[] = {
      {"single/serial", 1, cri::Assignment::kDedicated, progress::ProgressMode::kSerial},
      {"single/conc", 1, cri::Assignment::kDedicated, progress::ProgressMode::kConcurrent},
      {"ded/serial", -1, cri::Assignment::kDedicated, progress::ProgressMode::kSerial},
      {"ded/conc", -1, cri::Assignment::kDedicated, progress::ProgressMode::kConcurrent},
      {"rr/serial", -1, cri::Assignment::kRoundRobin, progress::ProgressMode::kSerial},
      {"rr/conc", -1, cri::Assignment::kRoundRobin, progress::ProgressMode::kConcurrent},
  };

  benchsupport::CheckList checks;
  for (const auto size : *sizes_opt) {
    benchsupport::FigureReport report(
        opt.fig_prefix + "_" + std::to_string(size) + "B",
        std::to_string(size) + " bytes — RMA-MT put+flush on " + opt.arch,
        "threads", "msg/s");
    double peak = 0;
    for (const SeriesSpec& s : series) {
      for (const int threads : thread_counts) {
        const auto stats = benchsupport::repeat(
            reps, static_cast<std::uint64_t>(*seed), [&](std::uint64_t run_seed) {
              model::RmaModelConfig cfg;
              cfg.costs = opt.costs;
              cfg.threads = threads;
              cfg.instances = s.instances < 0 ? opt.instances : s.instances;
              cfg.assignment = s.assignment;
              cfg.progress = s.mode;
              cfg.message_size = static_cast<std::uint64_t>(size);
              cfg.seed = run_seed;
              if (!*full) cfg.measure_ns = 10'000'000;
              const auto r = model::run_rma_model(cfg);
              peak = r.peak_rate;
              return r.msg_rate;
            });
        report.add_point(s.name, threads, stats);
      }
    }
    report.add_point("theoretical peak", thread_counts.front(), peak);
    report.add_point("theoretical peak", thread_counts.back(), peak);
    std::puts(report.render().c_str());
    if (!(*csv_dir).empty()) report.write_csv(*csv_dir);

    const double t_hi = thread_counts.back();
    const std::string tag = "(" + opt.fig_prefix + ", " + std::to_string(size) + "B) ";
    if (size <= 1024) {
      checks.expect_ratio_at_least(report.value_at("ded/serial", t_hi),
                                   report.value_at("single/serial", t_hi), 4.0,
                                   tag + "dedicated far above single instance");
      // Compare assignment policies below wire saturation: once both hit
      // the peak (e.g. 1 KiB at max threads) the policy cannot matter.
      double t_cmp = -1;
      for (auto it = thread_counts.rbegin(); it != thread_counts.rend(); ++it) {
        if (report.value_at("ded/serial", *it) < 0.85 * peak) {
          t_cmp = *it;
          break;
        }
      }
      if (t_cmp > 1) {
        checks.expect_ratio_at_least(
            report.value_at("ded/serial", t_cmp), report.value_at("rr/serial", t_cmp),
            1.05, tag + "dedicated outperforms round-robin (below wire saturation)");
      }
      checks.expect_ratio_at_least(report.value_at("single/serial", 1),
                                   report.value_at("single/serial", t_hi), 1.5,
                                   tag + "single instance degrades with threads");
    } else if (size >= 16384) {
      checks.expect_close(report.value_at("ded/serial", t_hi), peak, 0.2,
                          tag + "bandwidth-bound sizes pinned at the wire peak");
    }
    checks.expect_close(report.value_at("ded/serial", t_hi),
                        report.value_at("ded/conc", t_hi), 0.15,
                        tag + "serial vs concurrent progress barely differ for RMA");
  }
  std::puts(checks.render().c_str());

  if (*real) {
    benchsupport::FigureReport real_report(opt.fig_prefix + "_real",
                                           "Real engine, host scale (validation)",
                                           "threads", "msg/s");
    for (const int threads : {1, 2, 4}) {
      for (const bool dedicated_many : {false, true}) {
        rmamt::RmamtConfig cfg;
        cfg.threads = threads;
        cfg.engine.num_instances = dedicated_many ? 4 : 1;
        cfg.engine.assignment = cri::Assignment::kDedicated;
        cfg.message_size = 64;
        cfg.ops_per_round = 200;
        cfg.duration_s = 0.15;
        real_report.add_point(dedicated_many ? "ded-4" : "single", threads,
                              rmamt::run_put_flush(cfg).msg_rate);
      }
    }
    std::puts(real_report.render().c_str());
    if (!(*csv_dir).empty()) real_report.write_csv(*csv_dir);
  }

  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace fairmpi::bench
