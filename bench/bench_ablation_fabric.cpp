// Ablation: fabric building blocks — RX ring throughput under different
// producer counts, inline vs heap payload transfer, and the end-to-end
// injection path through an endpoint.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "fairmpi/common/mpsc_ring.hpp"
#include "fairmpi/common/spsc_ring.hpp"
#include "fairmpi/fabric/fabric.hpp"
#include "fairmpi/fabric/submit_ring.hpp"

namespace {

using fairmpi::MpscRing;
using fairmpi::SpscRing;
using fairmpi::fabric::Endpoint;
using fairmpi::fabric::Fabric;
using fairmpi::fabric::Opcode;
using fairmpi::fabric::Packet;
using fairmpi::fabric::SubmitDesc;
using fairmpi::fabric::SubmitRing;
using fairmpi::fabric::SubmitTicket;

void BM_RingPushPopSingleThread(benchmark::State& state) {
  MpscRing<std::uint64_t> ring(4096);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(std::uint64_t{v});
    std::uint64_t out = 0;
    ring.try_pop(out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPushPopSingleThread);

/// The progress engine's drain pattern: a burst of packets lands and the
/// consumer extracts it. Manual timing covers only the drain phase (the
/// fill is the producers' cost, measured elsewhere). Two variants: one
/// try_pop per item vs one try_pop_n batch — the batch amortizes the head
/// update and is what progress.cpp does under the CRI lock.
template <bool kBatch>
void ring_drain_bench(benchmark::State& state) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  MpscRing<std::uint64_t> ring(4096);
  std::uint64_t out[64];
  std::uint64_t v = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) ring.try_push(std::uint64_t{v++});
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t drained = 0;
    if constexpr (kBatch) {
      while (drained < burst) {
        const std::size_t n = ring.try_pop_n(out, 64);
        if (n == 0) break;
        drained += n;
      }
    } else {
      while (drained < burst && ring.try_pop(out[0])) ++drained;
    }
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(drained);
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(burst));
}

void BM_RingDrainSingle(benchmark::State& state) { ring_drain_bench<false>(state); }
void BM_RingDrainBatch(benchmark::State& state) { ring_drain_bench<true>(state); }
BENCHMARK(BM_RingDrainSingle)->Arg(64)->UseManualTime();
BENCHMARK(BM_RingDrainBatch)->Arg(64)->UseManualTime();

void BM_RingMultiProducer(benchmark::State& state) {
  static MpscRing<std::uint64_t>* ring = nullptr;
  if (state.thread_index() == 0) ring = new MpscRing<std::uint64_t>(8192);
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      // Consumer drains.
      std::uint64_t out;
      while (ring->try_pop(out)) benchmark::DoNotOptimize(out);
    } else {
      // No retry loop: the consumer thread may exhaust its iterations
      // first, and a spinning producer would then never terminate. A full
      // ring simply counts as one (failed) push attempt.
      benchmark::DoNotOptimize(ring->try_push(std::uint64_t{1}));
    }
  }
  if (state.thread_index() == 0) {
    delete ring;
    ring = nullptr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingMultiProducer)->Threads(2)->Threads(4);

/// The RX lane primitive (DESIGN.md §5f): one SPSC push+pop with no atomic
/// RMW anywhere. This is the floor BM_RingPushPopSingleThread's MPSC
/// protocol is compared against — the gap is the per-packet price of
/// multi-producer arbitration.
void BM_SpscLanePushPop(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(4096);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(std::uint64_t{v});
    std::uint64_t out = 0;
    ring.try_pop(out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscLanePushPop);

/// Uncontended submission-ring round trip: claim + fill + publish on the
/// producer side, drain + ticket resolve on the consumer side. This is the
/// overhead a sender pays for going through the combining funnel instead
/// of injecting directly under the lock it already holds.
void BM_SubmitRingSubmitDrain(benchmark::State& state) {
  SubmitRing ring(64);
  Packet pkt;
  pkt.hdr.opcode = Opcode::kEager;
  for (auto _ : state) {
    SubmitTicket ticket;
    benchmark::DoNotOptimize(ring.try_push({&pkt, &ticket, 1}));
    ring.drain([](const SubmitDesc& d) {
      d.ticket->status.store(1, std::memory_order_release);
    });
    benchmark::DoNotOptimize(ticket.load_acquire());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitRingSubmitDrain);

/// Contended combining funnel: N-1 producer threads claim descriptors
/// (doorbell batched at SubmitRing::kDoorbellBatch), one consumer drains.
/// The per-item time under threads is the headline number the lock-free
/// submission path buys — producers pay one CAS, not a lock handoff.
void BM_SubmitRingMultiProducer(benchmark::State& state) {
  static SubmitRing* ring = nullptr;
  if (state.thread_index() == 0) ring = new SubmitRing(8192);
  static Packet pkt;  // producers only pass its address through the ring
  // Tickets are static so a descriptor still in flight when a producer's
  // loop ends never points at dead stack. Unlike a real submission nobody
  // waits on them, so they are written only by the consumer — race-free.
  static SubmitTicket tickets[8][1024];
  std::size_t next = 0;
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      ring->drain([](const SubmitDesc& d) {
        d.ticket->status.store(1, std::memory_order_release);
      });
    } else {
      // No retry on full (the consumer may finish its iterations first);
      // a full ring counts as one failed claim, as in BM_RingMultiProducer.
      SubmitTicket& t = tickets[state.thread_index() & 7][next];
      next = (next + 1) & 1023;
      benchmark::DoNotOptimize(ring->try_push({&pkt, &t, 1}));
    }
  }
  if (state.thread_index() == 0) {
    delete ring;
    ring = nullptr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitRingMultiProducer)->Threads(2)->Threads(4);

void BM_PacketInlinePayload(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    Packet pkt;
    pkt.hdr.opcode = Opcode::kEager;
    pkt.set_payload(payload.data(), payload.size());
    benchmark::DoNotOptimize(pkt.payload());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketInlinePayload)->Arg(0)->Arg(32)->Arg(64)->Arg(256)->Arg(4096);

void BM_EndpointInjection(benchmark::State& state) {
  Fabric fabric({1, 1});
  Endpoint ep(fabric, fabric.nic(0).context(0), 1);
  auto& rx = fabric.nic(1).context(0).rx();
  for (auto _ : state) {
    Packet pkt;
    pkt.hdr.opcode = Opcode::kEager;
    benchmark::DoNotOptimize(ep.try_send(std::move(pkt)));
    Packet out;
    rx.try_pop(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndpointInjection);

}  // namespace
