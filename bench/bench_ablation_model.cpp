// Ablation over the performance model's mechanisms: which knob produces
// which of the paper's effects. Complements the per-figure benches by
// sweeping the *causes* rather than the design space:
//
//   * out-of-sequence fraction vs. instance count and vs. timing jitter —
//     OOS needs either multi-ring extraction or grant-order randomness;
//   * message rate vs. the contended-lock handoff penalty — the
//     single-instance collapse is a cache-coherence effect;
//   * message rate vs. Multirate window size — why the paper runs
//     window 128 (small windows starve the pipeline).
#include <cstdio>

#include "fairmpi/benchsupport/report.hpp"
#include "fairmpi/common/cli.hpp"
#include "fairmpi/model/msgrate.hpp"

using namespace fairmpi;

int main(int argc, char** argv) {
  Cli cli("bench_ablation_model", "mechanism ablations of the performance model");
  auto& csv_dir = cli.opt_str("csv", "", "directory for CSV dumps (empty = none)");
  auto& seed = cli.opt_int("seed", 1, "RNG seed");
  cli.parse(argc, argv);

  auto base_cfg = [&](int pairs) {
    model::MsgRateConfig cfg;
    cfg.pairs = pairs;
    cfg.instances = 20;
    cfg.assignment = cri::Assignment::kDedicated;
    cfg.seed = static_cast<std::uint64_t>(*seed);
    cfg.warmup_ns = 6'000'000;
    cfg.measure_ns = 8'000'000;
    return cfg;
  };

  benchsupport::CheckList checks;

  // --- OOS vs instances (20 pairs, shared communicator) ---
  {
    benchsupport::FigureReport report("ablation_oos_instances",
                                      "Out-of-sequence fraction vs CRI count (20 pairs)",
                                      "instances", "OOS fraction", /*log_y=*/false);
    for (const int instances : {1, 2, 5, 10, 20}) {
      model::MsgRateConfig cfg = base_cfg(20);
      cfg.instances = instances;
      report.add_point("shared comm", instances, model::run_msgrate(cfg).oos_fraction);
      cfg.comm_per_pair = true;
      cfg.progress = progress::ProgressMode::kConcurrent;
      report.add_point("comm-per-pair", instances, model::run_msgrate(cfg).oos_fraction);
    }
    std::puts(report.render().c_str());
    if (!(*csv_dir).empty()) report.write_csv(*csv_dir);
    checks.expect(report.value_at("shared comm", 1) > 0.6,
                  "shared sequence stream: heavy OOS even with one instance");
    checks.expect(report.value_at("comm-per-pair", 20) < 0.01,
                  "private streams + dedicated instances: OOS vanishes");
  }

  // --- OOS vs jitter (1 instance: inversions need grant-order noise) ---
  {
    benchsupport::FigureReport report("ablation_oos_jitter",
                                      "Out-of-sequence fraction vs timing jitter "
                                      "(20 pairs, 1 instance)",
                                      "jitter fraction", "OOS fraction", false);
    double oos_low = 0, oos_high = 0;
    for (const double jitter : {0.0, 0.05, 0.1, 0.25, 0.5}) {
      model::MsgRateConfig cfg = base_cfg(20);
      cfg.instances = 1;
      cfg.costs.jitter_frac = jitter;
      const double frac = model::run_msgrate(cfg).oos_fraction;
      report.add_point("1 instance", jitter, frac);
      if (jitter == 0.0) oos_low = frac;
      if (jitter == 0.5) oos_high = frac;
    }
    std::puts(report.render().c_str());
    if (!(*csv_dir).empty()) report.write_csv(*csv_dir);
    // Even with zero cost jitter the random lock grant order produces OOS;
    // jitter should not *reduce* it.
    checks.expect(oos_high >= oos_low * 0.8,
                  "timing jitter does not suppress out-of-sequence arrivals");
  }

  // --- rate vs lock handoff penalty (the single-instance collapse knob) ---
  {
    benchsupport::FigureReport report(
        "ablation_handoff", "Message rate vs contended-handoff penalty (20 pairs, 1 CRI)",
        "handoff ns/waiter", "msg/s");
    double rate_free = 0, rate_costly = 0;
    for (const int per_waiter : {0, 60, 120, 180, 300}) {
      model::MsgRateConfig cfg = base_cfg(20);
      cfg.instances = 1;
      cfg.costs.lock_handoff_per_waiter = static_cast<sim::Time>(per_waiter);
      const double rate = model::run_msgrate(cfg).msg_rate;
      report.add_point("1 instance", per_waiter, rate);
      if (per_waiter == 0) rate_free = rate;
      if (per_waiter == 300) rate_costly = rate;
    }
    std::puts(report.render().c_str());
    if (!(*csv_dir).empty()) report.write_csv(*csv_dir);
    checks.expect_ratio_at_least(rate_free, rate_costly, 1.5,
                                 "handoff (cache-coherence) cost drives the "
                                 "single-instance collapse");
  }

  // --- rate vs window size (pipeline depth) ---
  {
    benchsupport::FigureReport report("ablation_window",
                                      "Message rate vs Multirate window (8 pairs, "
                                      "comm-per-pair + concurrent)",
                                      "window", "msg/s");
    double w1 = 0, w128 = 0;
    for (const int window : {1, 8, 32, 128, 512}) {
      model::MsgRateConfig cfg = base_cfg(8);
      cfg.comm_per_pair = true;
      cfg.progress = progress::ProgressMode::kConcurrent;
      cfg.window = window;
      const double rate = model::run_msgrate(cfg).msg_rate;
      report.add_point("rate", window, rate);
      if (window == 1) w1 = rate;
      if (window == 128) w128 = rate;
    }
    std::puts(report.render().c_str());
    if (!(*csv_dir).empty()) report.write_csv(*csv_dir);
    // Finding: the engine is window-insensitive — the sender free-runs
    // against RX-ring backpressure and unmatched envelopes wait in the
    // unexpected queue, so the receiver window never becomes the pipeline
    // bottleneck. (Real MPI benchmarks window the *sender* because eager
    // buffer space is finite; our fabric's ring credit plays that role.)
    checks.expect_close(w128, w1, 0.25,
                        "rate is insensitive to the receive window: ring "
                        "backpressure, not the window, paces the sender");
  }

  std::puts(checks.render().c_str());
  return checks.failures() == 0 ? 0 : 1;
}
