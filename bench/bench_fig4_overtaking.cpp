// Reproduces paper Figure 4: the Figure 3 grid with message ordering
// relaxed — communicators created with mpi_assert_allow_overtaking
// (sequence validation skipped) and receives posted with MPI_ANY_TAG
// (posted-queue search skipped), isolating how much of the multithreaded
// degradation is matching cost.
#include "msgrate_figure.hpp"

int main(int argc, char** argv) {
  fairmpi::bench::MsgRateFigureOptions opt;
  opt.fig_prefix = "fig4";
  opt.note = "Figure 4: zero-byte message rate with message overtaking";
  opt.overtaking = true;
  return fairmpi::bench::run_msgrate_figure(argc, argv, opt);
}
