// Reproduces paper Figure 3: zero-byte message rate of Multirate-pairwise
// under (a) serial progress, (b) concurrent progress, and (c) concurrent
// progress + concurrent (per-communicator) matching, for round-robin vs
// dedicated CRI assignment at 1/10/20 instances.
//
// Default: quick model sweep. --full: paper-scale (all pair counts, 3
// reps). --real: additionally validates trends on the real engine at host
// scale. --csv DIR dumps raw series.
#include "msgrate_figure.hpp"

int main(int argc, char** argv) {
  fairmpi::bench::MsgRateFigureOptions opt;
  opt.fig_prefix = "fig3";
  opt.note = "Figure 3: zero-byte message rate across progress/matching designs";
  opt.overtaking = false;
  return fairmpi::bench::run_msgrate_figure(argc, argv, opt);
}
