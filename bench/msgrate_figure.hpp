// Shared driver for the Figure 3 / Figure 4 sweeps: three panels
// (serial progress, concurrent progress, concurrent progress + concurrent
// matching), each with round-robin vs dedicated assignment at 1/10/20
// instances — the exact grid of the paper. Figure 4 is the same grid with
// message overtaking + wildcard-tag receives.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fairmpi/benchsupport/report.hpp"
#include "fairmpi/common/cli.hpp"
#include "fairmpi/model/msgrate.hpp"
#include "fairmpi/multirate/multirate.hpp"

namespace fairmpi::bench {

struct MsgRateFigureOptions {
  std::string fig_prefix;  ///< "fig3" or "fig4"
  std::string note;        ///< figure caption
  bool overtaking = false; ///< Figure 4 mode
};

inline int run_msgrate_figure(int argc, char** argv, const MsgRateFigureOptions& opt) {
  Cli cli("bench_" + opt.fig_prefix, opt.note);
  auto& full = cli.opt_flag("full", "paper-scale sweep (all pair counts, 3 repetitions)");
  auto& reps_opt = cli.opt_int("reps", 0, "repetitions per point (0 = auto)");
  auto& pairs_max = cli.opt_int("pairs-max", 20, "largest thread-pair count");
  auto& csv_dir = cli.opt_str("csv", "", "directory for CSV dumps (empty = none)");
  auto& seed = cli.opt_int("seed", 1, "base RNG seed");
  auto& real = cli.opt_flag("real", "also run the real engine at host scale");
  cli.parse(argc, argv);

  const int reps = *reps_opt > 0 ? static_cast<int>(*reps_opt) : (*full ? 3 : 1);
  std::vector<int> pair_counts;
  if (*full) {
    for (int p = 1; p <= *pairs_max; ++p) pair_counts.push_back(p);
  } else {
    for (const int p : {1, 2, 4, 8, 12, 16, 20}) {
      if (p <= *pairs_max) pair_counts.push_back(p);
    }
  }

  struct Panel {
    const char* suffix;
    const char* title;
    progress::ProgressMode mode;
    bool comm_per_pair;
  };
  const Panel panels[] = {
      {"a", "Serial progress", progress::ProgressMode::kSerial, false},
      {"b", "Concurrent progress", progress::ProgressMode::kConcurrent, false},
      {"c", "Concurrent progress + concurrent matching",
       progress::ProgressMode::kConcurrent, true},
  };
  struct SeriesSpec {
    const char* name;
    int instances;
    cri::Assignment assignment;
  };
  const SeriesSpec series[] = {
      {"rr-1", 1, cri::Assignment::kRoundRobin},
      {"rr-10", 10, cri::Assignment::kRoundRobin},
      {"rr-20", 20, cri::Assignment::kRoundRobin},
      {"ded-1", 1, cri::Assignment::kDedicated},
      {"ded-10", 10, cri::Assignment::kDedicated},
      {"ded-20", 20, cri::Assignment::kDedicated},
  };

  std::vector<benchsupport::FigureReport> reports;
  for (const Panel& panel : panels) {
    benchsupport::FigureReport report(
        opt.fig_prefix + panel.suffix,
        std::string(panel.title) + (opt.overtaking ? " (overtaking + ANY_TAG)" : "") +
            " — zero-byte message rate",
        "thread pairs", "msg/s");
    for (const SeriesSpec& s : series) {
      for (const int pairs : pair_counts) {
        const auto stats = benchsupport::repeat(
            reps, static_cast<std::uint64_t>(*seed), [&](std::uint64_t run_seed) {
              model::MsgRateConfig cfg;
              cfg.pairs = pairs;
              cfg.instances = s.instances;
              cfg.assignment = s.assignment;
              cfg.progress = panel.mode;
              cfg.comm_per_pair = panel.comm_per_pair;
              cfg.overtaking = opt.overtaking;
              cfg.any_tag = opt.overtaking;
              cfg.seed = run_seed;
              if (!*full) {
                cfg.warmup_ns = 6'000'000;
                cfg.measure_ns = 8'000'000;
              }
              return model::run_msgrate(cfg).msg_rate;
            });
        report.add_point(s.name, pairs, stats);
      }
    }
    std::puts(report.render().c_str());
    if (!(*csv_dir).empty()) report.write_csv(*csv_dir);
    reports.push_back(std::move(report));
  }

  // Self-validation against the paper's qualitative claims.
  const double hi = pair_counts.back();
  benchsupport::CheckList checks;
  checks.expect_ratio_at_least(
      reports[0].value_at("ded-20", hi), reports[0].value_at("ded-1", hi), 1.3,
      "(" + opt.fig_prefix + "a) more instances lift the send path at max pairs");
  checks.expect_ratio_at_least(
      reports[0].value_at("ded-1", 1), reports[0].value_at("ded-1", hi), 1.2,
      "(" + opt.fig_prefix + "a) single shared instance degrades with pairs");
  if (!opt.overtaking) {
    checks.expect_ratio_at_least(
        reports[0].value_at("ded-20", hi), reports[1].value_at("ded-20", hi), 1.1,
        "(" + opt.fig_prefix + "b) concurrent progress alone does not beat serial");
    checks.expect_ratio_at_least(
        reports[2].value_at("ded-20", 12), reports[0].value_at("ded-1", 12), 3.0,
        "(" + opt.fig_prefix + "c) concurrent matching gives a major increase");
    checks.expect_ratio_at_least(
        reports[2].value_at("ded-20", 8), reports[2].value_at("rr-20", 8), 1.1,
        "(" + opt.fig_prefix + "c) dedicated beats round-robin at mid pair counts");
  } else {
    checks.expect_close(
        reports[0].value_at("ded-20", hi), reports[0].value_at("ded-20", 8), 0.35,
        "(" + opt.fig_prefix + "a) serial progress flattens once matching is cheap");
  }
  std::puts(checks.render().c_str());

  if (*real) {
    benchsupport::FigureReport real_report(
        opt.fig_prefix + "_real", "Real engine, host scale (validation)", "thread pairs",
        "msg/s");
    for (const int pairs : {1, 2, 4}) {
      for (const bool many : {false, true}) {
        multirate::MultirateConfig cfg;
        cfg.pairs = pairs;
        cfg.engine.num_instances = many ? 4 : 1;
        cfg.engine.assignment = cri::Assignment::kDedicated;
        cfg.comm_per_pair = many;
        cfg.engine.progress_mode = many ? progress::ProgressMode::kConcurrent
                                        : progress::ProgressMode::kSerial;
        cfg.engine.allow_overtaking = opt.overtaking;
        cfg.any_tag = opt.overtaking;
        if (opt.overtaking) cfg.comm_per_pair = true;
        cfg.duration_s = 0.15;
        real_report.add_point(many ? "cri+match" : "base", pairs,
                              multirate::run_pairwise(cfg).msg_rate);
      }
    }
    std::puts(real_report.render().c_str());
    if (!(*csv_dir).empty()) real_report.write_csv(*csv_dir);
  }

  return checks.failures() == 0 ? 0 : 1;
}

}  // namespace fairmpi::bench
