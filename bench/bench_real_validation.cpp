// Host-scale validation of the paper's trends on the REAL engine (actual
// threads, locks and fabric — no virtual time). A 2-core container cannot
// show 20-thread scaling, but the *mechanisms* are measurable:
//   * per-pair communicators reduce matching contention;
//   * overtaking removes out-of-sequence buffering entirely;
//   * concurrent senders on one communicator produce out-of-sequence
//     arrivals (the §II-C effect, measured, not simulated);
//   * dedicated CRIs keep RMA instance locks uncontended.
#include <algorithm>
#include <cstdio>

#include "fairmpi/benchsupport/report.hpp"
#include "fairmpi/common/cli.hpp"
#include "fairmpi/common/table.hpp"
#include "fairmpi/multirate/multirate.hpp"
#include "fairmpi/rmamt/rmamt.hpp"

using namespace fairmpi;
using spc::Counter;

int main(int argc, char** argv) {
  Cli cli("bench_real_validation",
          "real-engine (host-scale) validation of the paper's mechanisms");
  auto& pairs_opt = cli.opt_int("pairs", 2, "thread pairs for the two-sided runs");
  auto& duration = cli.opt_double("duration", 0.15, "seconds per measurement");
  auto& csv_dir = cli.opt_str("csv", "", "directory for CSV dump (empty = none)");
  cli.parse(argc, argv);

  const int pairs = static_cast<int>(*pairs_opt);
  benchsupport::CheckList checks;
  Table table({"configuration", "msg rate", "OOS", "unexpected"});

  auto run = [&](const char* name, multirate::MultirateConfig cfg) {
    cfg.pairs = pairs;
    cfg.duration_s = *duration;
    const auto res = multirate::run_pairwise(cfg);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%s msg/s", format_si(res.msg_rate).c_str());
    table.add_row({name, rate,
                   std::to_string(res.receiver_spc.get(Counter::kOutOfSequence)),
                   std::to_string(res.receiver_spc.get(Counter::kUnexpectedMessages))});
    return res;
  };

  multirate::MultirateConfig base;
  base.engine.num_instances = 1;
  const auto r_base = run("base: 1 CRI, serial progress", base);

  multirate::MultirateConfig cri = base;
  cri.engine.num_instances = 4;
  cri.engine.assignment = cri::Assignment::kDedicated;
  const auto r_cri = run("4 CRIs dedicated, serial progress", cri);

  multirate::MultirateConfig full = cri;
  full.engine.progress_mode = progress::ProgressMode::kConcurrent;
  full.comm_per_pair = true;
  const auto r_full = run("4 CRIs + concurrent progress + comm-per-pair", full);

  multirate::MultirateConfig ovt = full;
  ovt.engine.allow_overtaking = true;
  ovt.any_tag = true;
  const auto r_ovt = run("... + overtaking + ANY_TAG", ovt);

  multirate::MultirateConfig process = base;
  process.process_mode = true;
  const auto r_process = run("process mode", process);

  std::puts(table.render().c_str());

  // Mechanism checks (rates on an oversubscribed 2-core host are noisy;
  // the counter-based checks are the robust ones).
  checks.expect(pairs < 2 || r_base.receiver_spc.get(Counter::kOutOfSequence) > 0,
                "concurrent senders on one communicator produce out-of-sequence "
                "arrivals (measured)");
  checks.expect(r_full.receiver_spc.get(Counter::kOutOfSequence) <
                    std::max<std::uint64_t>(r_base.receiver_spc.get(Counter::kOutOfSequence),
                                            1),
                "comm-per-pair + dedicated reduces out-of-sequence arrivals");
  checks.expect(r_ovt.receiver_spc.get(Counter::kOutOfSequence) == 0,
                "overtaking eliminates out-of-sequence buffering");
  checks.expect(r_process.receiver_spc.get(Counter::kOutOfSequence) == 0,
                "process mode: private streams are always in order");
  checks.expect(r_base.msg_rate > 0 && r_cri.msg_rate > 0 && r_full.msg_rate > 0,
                "all configurations make forward progress");

  // RMA on the real engine. NOTE: on this class of host (2 oversubscribed
  // vCPUs) run-to-run variance between near-equal configurations is 2-3x,
  // and with only two hardware threads the serializing single instance can
  // even win (alternating bursts are kinder to the cache-coherence fabric
  // than two truly concurrent initiators sharing SPC lines). The
  // paper-scale dedicated-vs-single contrast is the model backend's job
  // (bench_fig6/7); here we print the observation and assert only the
  // stable property: instances that are not used cost nothing.
  auto rma_rate = [&](int threads, int instances) {
    rmamt::RmamtConfig rma;
    rma.threads = threads;
    rma.engine.num_instances = instances;
    rma.engine.assignment = cri::Assignment::kDedicated;
    rma.duration_s = *duration;
    rma.ops_per_round = 256;
    return rmamt::run_put_flush(rma).msg_rate;
  };
  std::printf("RMA put rate, 2 threads: dedicated-2 %s/s vs single %s/s "
              "(informational; see note in source)\n",
              format_si(rma_rate(2, 2)).c_str(), format_si(rma_rate(2, 1)).c_str());
  double best_1t_many = 0, best_1t_single = 0;
  for (int trial = 0; trial < 3; ++trial) {
    best_1t_many = std::max(best_1t_many, rma_rate(1, 4));
    best_1t_single = std::max(best_1t_single, rma_rate(1, 1));
  }
  checks.expect_ratio_at_least(best_1t_many, best_1t_single, 0.7,
                               "unused extra instances do not slow a single thread");

  std::puts(checks.render().c_str());
  if (!(*csv_dir).empty()) {
    benchsupport::FigureReport fr("real_validation", "real-engine validation", "config",
                                  "msg/s");
    fr.add_point("rate", 0, r_base.msg_rate);
    fr.add_point("rate", 1, r_cri.msg_rate);
    fr.add_point("rate", 2, r_full.msg_rate);
    fr.add_point("rate", 3, r_ovt.msg_rate);
    fr.add_point("rate", 4, r_process.msg_rate);
    fr.write_csv(*csv_dir);
  }
  return checks.failures() == 0 ? 0 : 1;
}
