// Ablation: the lock primitives the CRI design is built on — TAS spinlock
// vs FIFO ticket lock vs std::mutex, uncontended and contended, plus the
// try-lock fast path Algorithm 2 leans on, and the contention profiler's
// disabled/enabled cost on the RankedLock wrapper.
#include <benchmark/benchmark.h>

#include <mutex>

#include "fairmpi/common/spinlock.hpp"
#include "fairmpi/debug/lockcheck.hpp"
#include "fairmpi/obs/contention.hpp"

namespace {

using fairmpi::LockRank;
using fairmpi::RankedLock;
using fairmpi::Spinlock;
using fairmpi::TicketLock;

template <typename Lock>
void BM_LockUnlock(benchmark::State& state) {
  static Lock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_LockUnlock<Spinlock>)->Threads(1)->Threads(2)->Threads(4);
// FIFO ticket locks convoy catastrophically when threads outnumber cores
// (the next-in-line owner may be descheduled) — one reason MPI internals
// favour TAS locks; keep the contended case within the core count.
BENCHMARK(BM_LockUnlock<TicketLock>)->Threads(1)->Threads(2);
BENCHMARK(BM_LockUnlock<std::mutex>)->Threads(1)->Threads(2)->Threads(4);

void BM_TryLockUncontended(benchmark::State& state) {
  Spinlock lock;
  for (auto _ : state) {
    const bool ok = lock.try_lock();
    benchmark::DoNotOptimize(ok);
    if (ok) lock.unlock();
  }
}
BENCHMARK(BM_TryLockUncontended);

void BM_TryLockContended(benchmark::State& state) {
  // One permanent holder; measure the cost of the failing try_lock, the
  // operation Alg. 2 executes to skip busy instances.
  static Spinlock lock;
  if (state.thread_index() == 0) lock.lock();
  for (auto _ : state) {
    if (state.thread_index() != 0) {
      const bool ok = lock.try_lock();
      benchmark::DoNotOptimize(ok);
      if (ok) lock.unlock();  // unreachable; keeps the bench honest
    } else {
      benchmark::DoNotOptimize(&lock);
    }
  }
  if (state.thread_index() == 0) lock.unlock();
}
BENCHMARK(BM_TryLockContended)->Threads(2);

/// The contention profiler's cost policy, measured where it matters: a
/// RankedLock lock/unlock pair with obs off must price-match the bare
/// primitive (compare against BM_LockUnlock<Spinlock>/Threads:1 — the
/// disabled path is one relaxed load plus a predicted-not-taken branch),
/// and the enabled uncontended path adds one sharded counter bump.
void BM_RankedLockObsOff(benchmark::State& state) {
  fairmpi::obs::set_enabled(false);
  static RankedLock<Spinlock> lock{LockRank::kTestBase, "bench.obs-off"};
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_RankedLockObsOff);

void BM_RankedLockObsOn(benchmark::State& state) {
  fairmpi::obs::set_enabled(true);
  static RankedLock<Spinlock> lock{LockRank::kTestBase, "bench.obs-on"};
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
  fairmpi::obs::set_enabled(false);
}
BENCHMARK(BM_RankedLockObsOn);

/// Critical-section throughput through one shared lock: the single-CRI
/// funnel of the paper's baseline.
template <typename Lock>
void BM_SharedCounterIncrement(benchmark::State& state) {
  static Lock lock;
  static long counter = 0;
  for (auto _ : state) {
    std::scoped_lock guard(lock);
    benchmark::DoNotOptimize(++counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedCounterIncrement<Spinlock>)->Threads(1)->Threads(2)->Threads(4);
BENCHMARK(BM_SharedCounterIncrement<TicketLock>)->Threads(1)->Threads(2);

}  // namespace
