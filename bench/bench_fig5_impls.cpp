// Reproduces paper Figure 5: zero-byte pairwise message rate across
// "state-of-the-art MPI implementations" in process vs thread mode, plus
// the paper's CRI designs (log-scale Y in the paper).
//
// Substitution (DESIGN.md §4): Intel MPI and MPICH binaries are not
// available/linkable here; their *threaded* modes are modeled as
// global-critical-section engines (all stock implementations serialize
// heavily and sit an order of magnitude below process mode — the figure's
// point), and their process modes as process-mode runs with slightly
// different per-message CPU constants. Absolute vendor numbers are out of
// scope; the process-vs-thread gap and the CRI gains are the target.
#include <cstdio>
#include <vector>

#include "fairmpi/benchsupport/report.hpp"
#include "fairmpi/common/cli.hpp"
#include "fairmpi/model/msgrate.hpp"

using namespace fairmpi;

namespace {

/// Scale the two-sided CPU constants (a faster/slower MPI software stack).
model::CostModel scale_cpu(model::CostModel c, double f) {
  auto s = [f](sim::Time t) { return static_cast<sim::Time>(static_cast<double>(t) * f); };
  c.send_path = s(c.send_path);
  c.send_inject = s(c.send_inject);
  c.extract_msg = s(c.extract_msg);
  c.match_base = s(c.match_base);
  c.recv_post = s(c.recv_post);
  c.process_shared = s(c.process_shared);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig5_impls",
          "Figure 5: process vs thread mode across MPI implementation models");
  auto& full = cli.opt_flag("full", "paper-scale sweep (all pair counts, 3 reps)");
  auto& pairs_max = cli.opt_int("pairs-max", 20, "largest pair count");
  auto& csv_dir = cli.opt_str("csv", "", "directory for CSV dump (empty = none)");
  auto& seed = cli.opt_int("seed", 1, "base RNG seed");
  cli.parse(argc, argv);

  const int reps = *full ? 3 : 1;
  std::vector<int> pair_counts;
  if (*full) {
    for (int p = 1; p <= *pairs_max; ++p) pair_counts.push_back(p);
  } else {
    for (const int p : {1, 2, 4, 8, 12, 16, 20}) {
      if (p <= *pairs_max) pair_counts.push_back(p);
    }
  }

  struct Impl {
    const char* name;
    double cpu_scale;
    bool process;
    bool global_lock;
    bool offload;
    int instances;
    bool comm_per_pair;
    progress::ProgressMode mode;
  };
  const Impl impls[] = {
      // name               scale  proc  biglock offld inst  cpp    progress
      {"OMPI Process",       1.00, true,  false, false,  1, false, progress::ProgressMode::kSerial},
      {"OMPI Thread",        1.00, false, false, false,  1, false, progress::ProgressMode::kSerial},
      {"OMPI Thread+CRIs",   1.00, false, false, false, 20, false, progress::ProgressMode::kSerial},
      {"OMPI Thread+CRIs*",  1.00, false, false, false, 20, true,  progress::ProgressMode::kConcurrent},
      {"IMPI Process",       0.85, true,  false, false,  1, false, progress::ProgressMode::kSerial},
      {"IMPI Thread",        0.90, false, true,  false,  1, false, progress::ProgressMode::kSerial},
      {"MPICH Process",      1.05, true,  false, false,  1, false, progress::ProgressMode::kSerial},
      {"MPICH Thread",       1.10, false, true,  false,  1, false, progress::ProgressMode::kSerial},
      // Extension series (not in the paper's figure): the ref [20]
      // software-offload design — one comm thread, lock-less command queue.
      {"Offload (ext)",      1.00, false, false, true,   1, false, progress::ProgressMode::kSerial},
  };

  benchsupport::FigureReport report(
      "fig5", "Pairwise 0 bytes, window 128 — implementation comparison (log scale)",
      "communication pairs", "msg/s");
  for (const Impl& impl : impls) {
    for (const int pairs : pair_counts) {
      const auto stats = benchsupport::repeat(
          reps, static_cast<std::uint64_t>(*seed), [&](std::uint64_t run_seed) {
            model::MsgRateConfig cfg;
            cfg.costs = scale_cpu(model::alembert(), impl.cpu_scale);
            cfg.pairs = pairs;
            cfg.instances = impl.instances;
            cfg.assignment = cri::Assignment::kDedicated;
            cfg.progress = impl.mode;
            cfg.comm_per_pair = impl.comm_per_pair;
            cfg.process_mode = impl.process;
            cfg.global_lock = impl.global_lock;
            cfg.offload = impl.offload;
            cfg.seed = run_seed;
            if (!*full) {
              cfg.warmup_ns = 6'000'000;
              cfg.measure_ns = 8'000'000;
            }
            return model::run_msgrate(cfg).msg_rate;
          });
      report.add_point(impl.name, pairs, stats);
    }
  }

  std::puts(report.render().c_str());
  if (!(*csv_dir).empty()) report.write_csv(*csv_dir);

  const double hi = pair_counts.back();
  benchsupport::CheckList checks;
  checks.expect_ratio_at_least(report.value_at("OMPI Process", hi),
                               report.value_at("OMPI Thread", hi), 8.0,
                               "process mode an order of magnitude above base threading");
  checks.expect_ratio_at_least(report.value_at("OMPI Thread+CRIs", hi),
                               report.value_at("OMPI Thread", hi), 1.4,
                               "CRIs + try-lock: ~100% boost over base (paper)");
  checks.expect_ratio_at_least(report.value_at("OMPI Thread+CRIs*", hi),
                               report.value_at("OMPI Thread", hi), 4.0,
                               "CRIs + concurrent matching: up to ~10x over base (paper)");
  checks.expect_ratio_at_least(report.value_at("OMPI Process", hi),
                               report.value_at("OMPI Thread+CRIs*", hi), 1.2,
                               "even the best threaded mode stays below process mode");
  // All stock threaded implementations perform similarly poorly.
  const double t_ompi = report.value_at("OMPI Thread", hi);
  const double t_impi = report.value_at("IMPI Thread", hi);
  const double t_mpich = report.value_at("MPICH Thread", hi);
  checks.expect(t_impi < 3 * t_ompi && t_ompi < 3 * t_impi && t_mpich < 3 * t_ompi &&
                    t_ompi < 3 * t_mpich,
                "stock threaded modes within a small factor of each other");
  checks.expect_ratio_at_least(report.value_at("Offload (ext)", hi), t_ompi, 1.1,
                               "(ext) software offloading beats contended threading");
  checks.expect_ratio_at_least(report.value_at("OMPI Thread+CRIs*", hi),
                               report.value_at("Offload (ext)", hi), 1.5,
                               "(ext) but a single comm thread cannot match CRIs + "
                               "concurrent matching");
  std::puts(checks.render().c_str());
  return checks.failures() == 0 ? 0 : 1;
}
