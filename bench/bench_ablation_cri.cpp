// Ablation: CRI assignment overhead (Alg. 1) and end-to-end send-path
// throughput of the real engine as the instance count grows — the
// microscopic version of Figure 3a's sender-side story.
#include <benchmark/benchmark.h>

#include "fairmpi/core/universe.hpp"
#include "fairmpi/cri/cri.hpp"

namespace {

using fairmpi::Config;
using fairmpi::Request;
using fairmpi::Universe;
using fairmpi::kWorldComm;
using fairmpi::cri::Assignment;
using fairmpi::cri::CriPool;
using fairmpi::fabric::Fabric;

void BM_AssignRoundRobin(benchmark::State& state) {
  Fabric fabric({8});
  CriPool pool(fabric, 0, Assignment::kRoundRobin);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.next_round_robin());
  }
}
BENCHMARK(BM_AssignRoundRobin);

void BM_AssignDedicated(benchmark::State& state) {
  Fabric fabric({8});
  CriPool pool(fabric, 0, Assignment::kDedicated);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.dedicated_id());
  }
}
BENCHMARK(BM_AssignDedicated);

/// Zero-byte isend+drain throughput vs instance count and thread count:
/// the sender-side contention story. The receiver rank's progress is
/// driven by the sending thread itself (wait on a drain recv), keeping
/// the loop self-contained.
Universe* g_uni = nullptr;

void send_path_setup(const benchmark::State& state) {
  Config cfg;
  cfg.num_instances = static_cast<int>(state.range(0));
  cfg.assignment = Assignment::kDedicated;
  // Big rings so the bench measures injection, not drain — and concurrent
  // progress so every sender thread's periodic drain is effective (with
  // the serial gate, all senders can end up inside isend backpressure
  // with nobody able to drain the receiver: deadlock).
  // rx_ring_entries is now a PER-LANE (per-source-stream) credit window, so
  // the equivalent headroom needs far fewer entries per ring.
  cfg.fabric.rx_ring_entries = 1 << 15;
  cfg.progress_mode = fairmpi::progress::ProgressMode::kConcurrent;
  g_uni = new Universe(cfg);
}

/// Drain the receiver's rings. Unmatched envelopes land in the unexpected
/// queue and report 0 completions, so drain by call count, not by the
/// progress return value.
void drain_receiver(int calls) {
  for (int i = 0; i < calls; ++i) g_uni->rank(1).progress();
}

void send_path_teardown(const benchmark::State&) {
  drain_receiver(4096);
  delete g_uni;
  g_uni = nullptr;
}

void BM_SendPath(benchmark::State& state) {
  std::uint64_t local_iter = 0;
  for (auto _ : state) {
    Request req;
    g_uni->rank(0).isend(kWorldComm, 1, 1, nullptr, 0, req);
    // Drain the receiver side periodically so rings never back-pressure:
    // 16 concurrent-progress calls x batch 64 far outpace the 128 sends
    // in between, keeping ring occupancy bounded well below capacity.
    if (++local_iter % 128 == 0) drain_receiver(16);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SendPath)
    ->ArgName("instances")
    ->Arg(1)
    ->Arg(4)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    // Fixed iteration count: google-benchmark's auto-calibration re-runs
    // threaded cases many times (each with a full universe setup/teardown),
    // which can take minutes on a small host; 40k sends per thread is more
    // than enough signal.
    ->Iterations(40000)
    ->Setup(send_path_setup)
    ->Teardown(send_path_teardown);

}  // namespace
