# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_spc[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_cri[1]_include.cmake")
include("/root/repo/build/tests/test_match[1]_include.cmake")
include("/root/repo/build/tests/test_progress[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_benchkits[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
include("/root/repo/build/tests/test_benchsupport[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
