
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_boundaries.cpp" "tests/CMakeFiles/test_core.dir/core/test_boundaries.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_boundaries.cpp.o.d"
  "/root/repo/tests/core/test_cvar.cpp" "tests/CMakeFiles/test_core.dir/core/test_cvar.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cvar.cpp.o.d"
  "/root/repo/tests/core/test_fuzz.cpp" "tests/CMakeFiles/test_core.dir/core/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fuzz.cpp.o.d"
  "/root/repo/tests/core/test_p2p.cpp" "tests/CMakeFiles/test_core.dir/core/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_p2p.cpp.o.d"
  "/root/repo/tests/core/test_probe.cpp" "tests/CMakeFiles/test_core.dir/core/test_probe.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_probe.cpp.o.d"
  "/root/repo/tests/core/test_rendezvous.cpp" "tests/CMakeFiles/test_core.dir/core/test_rendezvous.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rendezvous.cpp.o.d"
  "/root/repo/tests/core/test_rma.cpp" "tests/CMakeFiles/test_core.dir/core/test_rma.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rma.cpp.o.d"
  "/root/repo/tests/core/test_universe.cpp" "tests/CMakeFiles/test_core.dir/core/test_universe.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
