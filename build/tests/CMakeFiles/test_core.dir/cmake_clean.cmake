file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_boundaries.cpp.o"
  "CMakeFiles/test_core.dir/core/test_boundaries.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cvar.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cvar.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fuzz.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fuzz.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_p2p.cpp.o"
  "CMakeFiles/test_core.dir/core/test_p2p.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_probe.cpp.o"
  "CMakeFiles/test_core.dir/core/test_probe.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rendezvous.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rendezvous.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rma.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rma.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_universe.cpp.o"
  "CMakeFiles/test_core.dir/core/test_universe.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
