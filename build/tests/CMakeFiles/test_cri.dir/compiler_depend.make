# Empty compiler generated dependencies file for test_cri.
# This may be replaced when dependencies are built.
