file(REMOVE_RECURSE
  "CMakeFiles/test_cri.dir/cri/test_cri.cpp.o"
  "CMakeFiles/test_cri.dir/cri/test_cri.cpp.o.d"
  "test_cri"
  "test_cri.pdb"
  "test_cri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
