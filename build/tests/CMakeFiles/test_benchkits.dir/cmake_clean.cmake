file(REMOVE_RECURSE
  "CMakeFiles/test_benchkits.dir/multirate/test_multirate.cpp.o"
  "CMakeFiles/test_benchkits.dir/multirate/test_multirate.cpp.o.d"
  "test_benchkits"
  "test_benchkits.pdb"
  "test_benchkits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchkits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
