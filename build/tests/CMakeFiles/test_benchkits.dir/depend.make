# Empty dependencies file for test_benchkits.
# This may be replaced when dependencies are built.
