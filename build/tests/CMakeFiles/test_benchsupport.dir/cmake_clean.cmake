file(REMOVE_RECURSE
  "CMakeFiles/test_benchsupport.dir/benchsupport/test_report.cpp.o"
  "CMakeFiles/test_benchsupport.dir/benchsupport/test_report.cpp.o.d"
  "test_benchsupport"
  "test_benchsupport.pdb"
  "test_benchsupport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
