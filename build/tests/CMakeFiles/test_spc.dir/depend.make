# Empty dependencies file for test_spc.
# This may be replaced when dependencies are built.
