file(REMOVE_RECURSE
  "CMakeFiles/test_spc.dir/spc/test_spc.cpp.o"
  "CMakeFiles/test_spc.dir/spc/test_spc.cpp.o.d"
  "test_spc"
  "test_spc.pdb"
  "test_spc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
