file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_impls.dir/bench_fig5_impls.cpp.o"
  "CMakeFiles/bench_fig5_impls.dir/bench_fig5_impls.cpp.o.d"
  "bench_fig5_impls"
  "bench_fig5_impls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_impls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
