# Empty dependencies file for bench_fig5_impls.
# This may be replaced when dependencies are built.
