# Empty compiler generated dependencies file for bench_ablation_cri.
# This may be replaced when dependencies are built.
