file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cri.dir/bench_ablation_cri.cpp.o"
  "CMakeFiles/bench_ablation_cri.dir/bench_ablation_cri.cpp.o.d"
  "bench_ablation_cri"
  "bench_ablation_cri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
