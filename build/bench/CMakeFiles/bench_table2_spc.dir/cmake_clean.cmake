file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_spc.dir/bench_table2_spc.cpp.o"
  "CMakeFiles/bench_table2_spc.dir/bench_table2_spc.cpp.o.d"
  "bench_table2_spc"
  "bench_table2_spc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_spc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
