# Empty dependencies file for bench_table2_spc.
# This may be replaced when dependencies are built.
