# Empty dependencies file for bench_fig6_rma_haswell.
# This may be replaced when dependencies are built.
