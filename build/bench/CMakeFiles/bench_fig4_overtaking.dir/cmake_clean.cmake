file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_overtaking.dir/bench_fig4_overtaking.cpp.o"
  "CMakeFiles/bench_fig4_overtaking.dir/bench_fig4_overtaking.cpp.o.d"
  "bench_fig4_overtaking"
  "bench_fig4_overtaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_overtaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
