# Empty dependencies file for bench_fig4_overtaking.
# This may be replaced when dependencies are built.
