file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rma_knl.dir/bench_fig7_rma_knl.cpp.o"
  "CMakeFiles/bench_fig7_rma_knl.dir/bench_fig7_rma_knl.cpp.o.d"
  "bench_fig7_rma_knl"
  "bench_fig7_rma_knl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rma_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
