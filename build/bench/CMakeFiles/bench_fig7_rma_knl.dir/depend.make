# Empty dependencies file for bench_fig7_rma_knl.
# This may be replaced when dependencies are built.
