file(REMOVE_RECURSE
  "CMakeFiles/bench_real_validation.dir/bench_real_validation.cpp.o"
  "CMakeFiles/bench_real_validation.dir/bench_real_validation.cpp.o.d"
  "bench_real_validation"
  "bench_real_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
