# Empty dependencies file for bench_real_validation.
# This may be replaced when dependencies are built.
