file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_msgrate.dir/bench_fig3_msgrate.cpp.o"
  "CMakeFiles/bench_fig3_msgrate.dir/bench_fig3_msgrate.cpp.o.d"
  "bench_fig3_msgrate"
  "bench_fig3_msgrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_msgrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
