# Empty dependencies file for task_pool_overtaking.
# This may be replaced when dependencies are built.
