file(REMOVE_RECURSE
  "CMakeFiles/task_pool_overtaking.dir/task_pool_overtaking.cpp.o"
  "CMakeFiles/task_pool_overtaking.dir/task_pool_overtaking.cpp.o.d"
  "task_pool_overtaking"
  "task_pool_overtaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_pool_overtaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
