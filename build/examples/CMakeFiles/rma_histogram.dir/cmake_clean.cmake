file(REMOVE_RECURSE
  "CMakeFiles/rma_histogram.dir/rma_histogram.cpp.o"
  "CMakeFiles/rma_histogram.dir/rma_histogram.cpp.o.d"
  "rma_histogram"
  "rma_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
