# Empty dependencies file for multirate_tool.
# This may be replaced when dependencies are built.
