file(REMOVE_RECURSE
  "CMakeFiles/multirate_tool.dir/multirate_tool.cpp.o"
  "CMakeFiles/multirate_tool.dir/multirate_tool.cpp.o.d"
  "multirate_tool"
  "multirate_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirate_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
