# Empty compiler generated dependencies file for fairmpi.
# This may be replaced when dependencies are built.
