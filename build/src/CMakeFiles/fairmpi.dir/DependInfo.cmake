
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchsupport/report.cpp" "src/CMakeFiles/fairmpi.dir/benchsupport/report.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/benchsupport/report.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/fairmpi.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/fairmpi.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/common/table.cpp.o.d"
  "/root/repo/src/core/cvar.cpp" "src/CMakeFiles/fairmpi.dir/core/cvar.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/core/cvar.cpp.o.d"
  "/root/repo/src/core/rank.cpp" "src/CMakeFiles/fairmpi.dir/core/rank.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/core/rank.cpp.o.d"
  "/root/repo/src/core/rendezvous.cpp" "src/CMakeFiles/fairmpi.dir/core/rendezvous.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/core/rendezvous.cpp.o.d"
  "/root/repo/src/core/universe.cpp" "src/CMakeFiles/fairmpi.dir/core/universe.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/core/universe.cpp.o.d"
  "/root/repo/src/cri/cri.cpp" "src/CMakeFiles/fairmpi.dir/cri/cri.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/cri/cri.cpp.o.d"
  "/root/repo/src/match/match_engine.cpp" "src/CMakeFiles/fairmpi.dir/match/match_engine.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/match/match_engine.cpp.o.d"
  "/root/repo/src/model/costs.cpp" "src/CMakeFiles/fairmpi.dir/model/costs.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/model/costs.cpp.o.d"
  "/root/repo/src/model/msgrate.cpp" "src/CMakeFiles/fairmpi.dir/model/msgrate.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/model/msgrate.cpp.o.d"
  "/root/repo/src/model/rmamt.cpp" "src/CMakeFiles/fairmpi.dir/model/rmamt.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/model/rmamt.cpp.o.d"
  "/root/repo/src/multirate/multirate.cpp" "src/CMakeFiles/fairmpi.dir/multirate/multirate.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/multirate/multirate.cpp.o.d"
  "/root/repo/src/offload/offload.cpp" "src/CMakeFiles/fairmpi.dir/offload/offload.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/offload/offload.cpp.o.d"
  "/root/repo/src/p2p/sender.cpp" "src/CMakeFiles/fairmpi.dir/p2p/sender.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/p2p/sender.cpp.o.d"
  "/root/repo/src/progress/progress.cpp" "src/CMakeFiles/fairmpi.dir/progress/progress.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/progress/progress.cpp.o.d"
  "/root/repo/src/rma/window.cpp" "src/CMakeFiles/fairmpi.dir/rma/window.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/rma/window.cpp.o.d"
  "/root/repo/src/rmamt/rmamt.cpp" "src/CMakeFiles/fairmpi.dir/rmamt/rmamt.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/rmamt/rmamt.cpp.o.d"
  "/root/repo/src/sim/sim.cpp" "src/CMakeFiles/fairmpi.dir/sim/sim.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/sim/sim.cpp.o.d"
  "/root/repo/src/spc/spc.cpp" "src/CMakeFiles/fairmpi.dir/spc/spc.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/spc/spc.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/fairmpi.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/fairmpi.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
