file(REMOVE_RECURSE
  "libfairmpi.a"
)
