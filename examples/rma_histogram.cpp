// One-sided histogram — the RMA pattern §II-D argues is well suited to
// threads: no matching, no target involvement, concurrent passive-target
// synchronization.
//
// Several worker threads on rank 0 classify a stream of samples and bump
// remote histogram bins on rank 1 with atomic accumulates, flushing
// periodically. Rank 1 never participates; after the workers finish, the
// main thread verifies the histogram against a sequential recount.
//
// Build & run:  ./build/examples/rma_histogram [samples-per-thread]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "fairmpi/common/rng.hpp"
#include "fairmpi/rma/window.hpp"

namespace {
constexpr int kThreads = 4;
constexpr int kBins = 64;
}  // namespace

int main(int argc, char** argv) {
  const int per_thread = argc > 1 ? std::atoi(argv[1]) : 100000;

  fairmpi::Config cfg;
  cfg.num_instances = kThreads;  // dedicated CRI per worker: ideal RMA setup
  cfg.assignment = fairmpi::cri::Assignment::kDedicated;
  fairmpi::Universe uni(cfg);

  // Rank 1 exposes the histogram; rank 0 exposes nothing.
  std::vector<std::uint64_t> bins(kBins, 0);
  fairmpi::rma::WindowGroup group(
      uni, {{nullptr, 0}, {bins.data(), bins.size() * sizeof(std::uint64_t)}});

  std::vector<std::uint64_t> expected(kBins, 0);
  std::vector<std::vector<std::uint64_t>> local_counts(
      kThreads, std::vector<std::uint64_t>(kBins, 0));

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      fairmpi::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
      fairmpi::rma::Window& win = group.window(0);
      win.lock_all();  // passive-target epoch
      for (int i = 0; i < per_thread; ++i) {
        const auto bin = static_cast<std::size_t>(rng.bounded(kBins));
        local_counts[static_cast<std::size_t>(t)][bin] += 1;
        win.accumulate_add_u64(/*target=*/1, bin * sizeof(std::uint64_t), 1);
        if (i % 4096 == 4095) win.flush(1);  // bound outstanding ops
      }
      win.unlock_all();  // flushes everything
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int b = 0; b < kBins; ++b) {
      expected[static_cast<std::size_t>(b)] +=
          local_counts[static_cast<std::size_t>(t)][static_cast<std::size_t>(b)];
    }
  }

  std::uint64_t total = 0;
  bool ok = true;
  for (int b = 0; b < kBins; ++b) {
    total += bins[static_cast<std::size_t>(b)];
    if (bins[static_cast<std::size_t>(b)] != expected[static_cast<std::size_t>(b)]) {
      std::printf("bin %d: got %llu want %llu MISMATCH\n", b,
                  static_cast<unsigned long long>(bins[static_cast<std::size_t>(b)]),
                  static_cast<unsigned long long>(expected[static_cast<std::size_t>(b)]));
      ok = false;
    }
  }
  std::printf("rma_histogram: %d threads x %d samples -> %llu accumulates, %s\n",
              kThreads, per_thread, static_cast<unsigned long long>(total),
              ok && total == static_cast<std::uint64_t>(kThreads) * per_thread
                  ? "verified OK"
                  : "VERIFICATION FAILED");

  const auto& spc = uni.rank(0).counters();
  std::printf("rma_histogram: spc accumulates=%llu flushes=%llu\n",
              static_cast<unsigned long long>(
                  spc.get(fairmpi::spc::Counter::kRmaAccumulates)),
              static_cast<unsigned long long>(spc.get(fairmpi::spc::Counter::kRmaFlushes)));
  return ok ? 0 : 1;
}
