// multirate_tool — the Multirate-pairwise benchmark as a standalone CLI
// over the real engine, configured the way a deployment would configure
// fairmpi: every engine knob comes from FAIRMPI_* environment variables
// (the paper's §III-B hint mechanism) or from command-line flags.
//
//   FAIRMPI_NUM_INSTANCES=4 FAIRMPI_ASSIGNMENT=dedicated ...
//   FAIRMPI_PROGRESS=concurrent ...
//   ./build/examples/multirate_tool --pairs 2 --comm-per-pair --duration 0.5
#include <cstdio>

#include "fairmpi/common/cli.hpp"
#include "fairmpi/common/table.hpp"
#include "fairmpi/core/cvar.hpp"
#include "fairmpi/multirate/multirate.hpp"

using namespace fairmpi;
using spc::Counter;

int main(int argc, char** argv) {
  Cli cli("multirate_tool", "Multirate-pairwise message-rate benchmark (real engine)");
  auto& pairs = cli.opt_int("pairs", 2, "communication pairs");
  auto& window = cli.opt_int("window", 128, "outstanding receives per pair");
  auto& bytes = cli.opt_int("bytes", 0, "payload size (0 = envelope only)");
  auto& duration = cli.opt_double("duration", 0.3, "measurement seconds");
  auto& process_mode = cli.opt_flag("process-mode", "pairs of single-threaded ranks");
  auto& comm_per_pair = cli.opt_flag("comm-per-pair", "dedicated communicator per pair");
  auto& any_tag = cli.opt_flag("any-tag", "post receives with the wildcard tag");
  auto& incast = cli.opt_flag("incast",
                              "N senders -> 1 receiver on one stream (worst-case "
                              "matching pressure) instead of pairwise");
  auto& show_cvars = cli.opt_flag("show-cvars", "print the resolved engine knobs");
  auto& trace_out = cli.opt_str("trace-out", "",
                                "write a Chrome/Perfetto trace JSON here "
                                "(pair with FAIRMPI_TRACE=1)");
  auto& obs_out = cli.opt_str("obs-out", "",
                              "write the observability JSON snapshot here "
                              "(pair with FAIRMPI_OBS=1)");
  auto& obs_selfcheck = cli.opt_flag(
      "obs-selfcheck",
      "deterministically contend the hot lock classes before exporting "
      "(for the CI --require-wait gate; 1-core runners cannot rely on "
      "preemption-driven contention)");
  cli.parse(argc, argv);

  multirate::MultirateConfig cfg;
  cfg.engine = config_from_env();  // FAIRMPI_* variables decide the design
  cfg.pairs = static_cast<int>(*pairs);
  cfg.window = static_cast<int>(*window);
  cfg.payload_bytes = static_cast<std::size_t>(*bytes);
  cfg.duration_s = *duration;
  cfg.process_mode = *process_mode;
  cfg.comm_per_pair = *comm_per_pair;
  cfg.any_tag = *any_tag;
  cfg.trace_out = *trace_out;
  cfg.obs_out = *obs_out;
  cfg.obs_selfcheck = *obs_selfcheck;

  if (*show_cvars) {
    std::printf("engine configuration:\n%s\n", list_cvars(cfg.engine).c_str());
  }

  const auto res = *incast ? multirate::run_incast(cfg) : multirate::run_pairwise(cfg);

  Table report({"metric", "value"});
  report.add_row({"message rate", format_si(res.msg_rate) + " msg/s"});
  report.add_row({"messages delivered", std::to_string(res.delivered)});
  report.add_row({"measured duration", std::to_string(res.duration_s) + " s"});
  report.add_row({"out-of-sequence",
                  std::to_string(res.receiver_spc.get(Counter::kOutOfSequence))});
  report.add_row({"unexpected messages",
                  std::to_string(res.receiver_spc.get(Counter::kUnexpectedMessages))});
  report.add_row(
      {"match time", format_ns(static_cast<double>(
                         res.receiver_spc.get(Counter::kMatchTimeNs)))});
  report.add_row({"receiver trylock failures",
                  std::to_string(res.receiver_spc.get(Counter::kInstanceTrylockFail))});
  std::puts(report.render().c_str());
  return res.delivered > 0 ? 0 : 1;
}
