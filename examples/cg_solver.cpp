// Distributed conjugate-gradient solver — collectives + point-to-point halo
// exchange in one realistic numeric kernel.
//
// Solves A x = b for the 1-D Laplacian (tridiagonal [-1, 2, -1]) with the
// domain split across R ranks, one driver thread per rank:
//   * the matrix-vector product needs each rank's edge values from its
//     neighbours → nonblocking halo exchange;
//   * the dot products and the convergence check are allreduce operations
//     (coll::allreduce, binomial trees over the engine).
//
// Build & run:  ./build/examples/cg_solver [n-per-rank] [max-iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fairmpi/coll/coll.hpp"

namespace {

constexpr int kRanks = 4;
constexpr int kTagLeft = 1;   // halo arriving at a rank's left edge
constexpr int kTagRight = 2;  // halo arriving at a rank's right edge

/// y = A v for the local slab of the 1-D Laplacian; `left`/`right` are the
/// neighbour halo values (0 at the physical boundary).
void apply_laplacian(const std::vector<double>& v, double left, double right,
                     std::vector<double>& y) {
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = i > 0 ? v[i - 1] : left;
    const double hi = i + 1 < n ? v[i + 1] : right;
    y[i] = 2.0 * v[i] - lo - hi;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int n_local = argc > 1 ? std::atoi(argv[1]) : 64;
  const int max_iters = argc > 2 ? std::atoi(argv[2]) : 1500;

  fairmpi::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.num_instances = 2;
  fairmpi::Universe uni(cfg);

  std::vector<double> residual_history;
  double final_residual = 0.0;

  auto solver = [&](int rank) {
    auto comm = uni.rank(rank).world();
    const auto n = static_cast<std::size_t>(n_local);

    // b = 1 everywhere; x starts at 0.
    std::vector<double> x(n, 0.0), r(n, 1.0), p(n, 1.0), ap(n, 0.0);

    auto dot = [&](const std::vector<double>& a, const std::vector<double>& b2) {
      double local = 0.0;
      for (std::size_t i = 0; i < n; ++i) local += a[i] * b2[i];
      double global = 0.0;
      fairmpi::coll::allreduce(comm, &local, &global, 1, fairmpi::coll::ReduceOp::kSum);
      return global;
    };

    double rr = dot(r, r);
    const double rr0 = rr;
    int iter = 0;
    for (; iter < max_iters && rr > 1e-16 * rr0; ++iter) {
      // ap = A p (halo exchange for the slab edges).
      double left = 0.0, right = 0.0;
      {
        fairmpi::Request reqs[4];
        int nreq = 0;
        if (rank > 0) {
          comm.isend(rank - 1, kTagRight, &p.front(), sizeof(double), reqs[nreq++]);
          comm.irecv(rank - 1, kTagLeft, &left, sizeof(double), reqs[nreq++]);
        }
        if (rank < kRanks - 1) {
          comm.isend(rank + 1, kTagLeft, &p.back(), sizeof(double), reqs[nreq++]);
          comm.irecv(rank + 1, kTagRight, &right, sizeof(double), reqs[nreq++]);
        }
        for (int i = 0; i < nreq; ++i) uni.rank(rank).wait(reqs[i]);
      }
      apply_laplacian(p, left, right, ap);

      const double pap = dot(p, ap);
      const double alpha = rr / pap;
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      const double rr_new = dot(r, r);
      const double beta = rr_new / rr;
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
      rr = rr_new;
      if (rank == 0 && iter % 64 == 0) residual_history.push_back(std::sqrt(rr));
    }
    if (rank == 0) {
      final_residual = std::sqrt(rr);
      std::printf("cg_solver: %d ranks x %d unknowns, converged to %.3e in %d iters\n",
                  kRanks, n_local, final_residual, iter);
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) threads.emplace_back(solver, r);
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < residual_history.size(); ++i) {
    std::printf("  residual after %3zu iters: %.3e\n", i * 64, residual_history[i]);
  }
  const bool ok = std::isfinite(final_residual) && final_residual < 1e-6;
  std::printf("cg_solver: %s\n", ok ? "OK" : "DID NOT CONVERGE");
  return ok ? 0 : 1;
}
