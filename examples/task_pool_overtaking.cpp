// Task-pool runtime over message overtaking — the application class §VI
// names as the natural fit for mpi_assert_allow_overtaking: "it might only
// be suitable for some categories of application that do not rely on
// message ordering, such as task-based runtimes".
//
// Rank 0 hosts a master thread that scatters independent work items to
// worker threads on rank 1; workers return results tagged by task id.
// Neither side cares about delivery order, so the universe is created with
// allow_overtaking = true and both directions use wildcard-tag receives:
// the matching engine skips sequence validation *and* the queue search —
// the fastest configuration the paper measures (Fig. 4c).
//
// Build & run:  ./build/examples/task_pool_overtaking [tasks]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

namespace {

constexpr int kWorkers = 4;

struct Task {
  std::uint32_t id;
  std::uint64_t seed;
};

struct Result {
  std::uint32_t id;
  std::uint64_t value;
};

/// The "work": a little hash-mixing loop, deliberately uneven in cost so
/// results come back out of order.
std::uint64_t crunch(std::uint64_t seed) {
  std::uint64_t x = seed;
  const int rounds = 100 + static_cast<int>(seed % 900);
  for (int i = 0; i < rounds; ++i) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
  }
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_tasks = argc > 1 ? std::atoi(argv[1]) : 2000;

  fairmpi::Config cfg;
  cfg.num_instances = kWorkers;
  cfg.assignment = fairmpi::cri::Assignment::kDedicated;
  cfg.progress_mode = fairmpi::progress::ProgressMode::kConcurrent;
  cfg.allow_overtaking = true;  // the §VI info key, engine-wide here
  fairmpi::Universe uni(cfg);

  constexpr int kTaskTag = 1;
  constexpr int kResultTag = 2;
  constexpr int kStopTag = 3;

  std::atomic<std::uint64_t> worker_checksum{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      auto world = uni.rank(1).world();
      std::uint64_t sum = 0;
      for (;;) {
        Task task{};
        // Any task, in whatever order it arrives.
        const fairmpi::Status st =
            world.recv(0, fairmpi::kAnyTag, &task, sizeof task);
        if (st.tag == kStopTag) break;
        Result res{task.id, crunch(task.seed)};
        sum += res.value;
        world.send(0, kResultTag, &res, sizeof res);
      }
      worker_checksum.fetch_add(sum, std::memory_order_relaxed);
    });
  }

  auto master = uni.rank(0).world();
  // Scatter all tasks up front (the pool self-balances: faster workers
  // simply match more of the unordered stream).
  std::uint64_t expected_checksum = 0;
  for (int i = 0; i < num_tasks; ++i) {
    Task task{static_cast<std::uint32_t>(i), 0x9e3779b9u + static_cast<std::uint64_t>(i)};
    expected_checksum += crunch(task.seed);
    master.send(1, kTaskTag, &task, sizeof task);
  }

  // Gather results (any order).
  std::vector<bool> seen(static_cast<std::size_t>(num_tasks), false);
  std::uint64_t gathered = 0;
  bool duplicates = false;
  for (int i = 0; i < num_tasks; ++i) {
    Result res{};
    master.recv(1, kResultTag, &res, sizeof res);
    if (seen[res.id]) duplicates = true;
    seen[res.id] = true;
    gathered += res.value;
  }
  // Poison pills.
  for (int w = 0; w < kWorkers; ++w) {
    const Task stop{0, 0};
    master.send(1, kStopTag, &stop, sizeof stop);
  }
  for (auto& w : workers) w.join();

  bool all_seen = true;
  for (const bool s : seen) all_seen = all_seen && s;
  const bool ok = all_seen && !duplicates && gathered == expected_checksum &&
                  worker_checksum.load() == expected_checksum;

  const auto spc = uni.aggregate_counters();
  std::printf(
      "task_pool_overtaking: %d tasks over %d workers — %s\n"
      "  checksum %016llx, out-of-sequence buffered: %llu (overtaking: none expected)\n",
      num_tasks, kWorkers, ok ? "verified OK" : "VERIFICATION FAILED",
      static_cast<unsigned long long>(gathered),
      static_cast<unsigned long long>(spc.get(fairmpi::spc::Counter::kOutOfSequence)));
  return ok && spc.get(fairmpi::spc::Counter::kOutOfSequence) == 0 ? 0 : 1;
}
