// MPI+threads halo exchange — the hybrid pattern the paper's introduction
// motivates: one MPI process per "node", several compute threads per
// process, all threads communicating concurrently (MPI_THREAD_MULTIPLE).
//
// A 1-D heat diffusion stencil is split across R ranks x T threads. Each
// thread owns a contiguous slab; slab edges are exchanged every iteration:
// intra-rank edges through shared memory, inter-rank edges through
// fairmpi two-sided messages with per-thread tags, using dedicated CRIs
// and the concurrent progress engine (the paper's recommended setup).
//
// Build & run:  ./build/examples/halo_exchange [iters]
#include <barrier>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

namespace {

constexpr int kRanks = 2;
constexpr int kThreadsPerRank = 4;
constexpr int kCellsPerThread = 256;
constexpr double kAlpha = 0.25;

struct Slab {
  std::vector<double> cells = std::vector<double>(kCellsPerThread, 0.0);
  std::vector<double> next = std::vector<double>(kCellsPerThread, 0.0);
};

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 200;

  // Step barrier across every thread of every rank: iteration i's halo
  // exchange and compute must finish everywhere before anyone reads a
  // neighbour's edge in iteration i+1. Hybrid codes typically use an
  // intra-node thread barrier (OpenMP barrier) for exactly this.
  std::barrier step_barrier(kRanks * kThreadsPerRank);

  fairmpi::Config cfg;
  cfg.num_ranks = kRanks;
  cfg.num_instances = kThreadsPerRank;  // one CRI per communicating thread
  cfg.assignment = fairmpi::cri::Assignment::kDedicated;
  cfg.progress_mode = fairmpi::progress::ProgressMode::kConcurrent;
  fairmpi::Universe uni(cfg);

  // Global domain: ranks side by side, threads side by side within a rank.
  // A fixed boundary of 1.0 on the far left drives heat rightward.
  std::vector<std::vector<Slab>> slabs(kRanks, std::vector<Slab>(kThreadsPerRank));

  auto worker = [&](int rank, int t) {
    auto world = uni.rank(rank).world();
    Slab& slab = slabs[static_cast<std::size_t>(rank)][static_cast<std::size_t>(t)];
    const bool leftmost = rank == 0 && t == 0;
    const bool rightmost = rank == kRanks - 1 && t == kThreadsPerRank - 1;
    // Tags encode the receiving thread and direction so concurrent
    // threads of one rank pair never cross-match.
    const int tag_from_left = 2 * t;       // halo arriving at our left edge
    const int tag_from_right = 2 * t + 1;  // halo arriving at our right edge

    for (int it = 0; it < iters; ++it) {
      double left_halo = leftmost ? 1.0 : 0.0;
      double right_halo = 0.0;

      fairmpi::Request reqs[4];
      int nreq = 0;
      // Inter-rank edges go over the wire; intra-rank edges are read
      // directly after the barrier below.
      if (t == 0 && rank > 0) {
        world.isend(rank - 1, 2 * (kThreadsPerRank - 1) + 1, &slab.cells.front(),
                    sizeof(double), reqs[nreq++]);
        world.irecv(rank - 1, tag_from_left, &left_halo, sizeof(double), reqs[nreq++]);
      }
      if (t == kThreadsPerRank - 1 && rank < kRanks - 1) {
        world.isend(rank + 1, 0, &slab.cells.back(), sizeof(double), reqs[nreq++]);
        world.irecv(rank + 1, tag_from_right, &right_halo, sizeof(double), reqs[nreq++]);
      }
      for (int i = 0; i < nreq; ++i) uni.rank(rank).wait(reqs[i]);

      // Intra-rank halos: neighbours' current edges (safe: `cells` is only
      // written after the exchange + barrier).
      if (t > 0) {
        left_halo = slabs[static_cast<std::size_t>(rank)][static_cast<std::size_t>(t - 1)]
                        .cells.back();
      }
      if (t < kThreadsPerRank - 1) {
        right_halo = slabs[static_cast<std::size_t>(rank)][static_cast<std::size_t>(t + 1)]
                         .cells.front();
      }
      if (rightmost) right_halo = 0.0;

      // Everyone has captured its pre-iteration halo values; only now may
      // anyone overwrite its cells (no torn reads of neighbours' edges).
      step_barrier.arrive_and_wait();

      for (int i = 0; i < kCellsPerThread; ++i) {
        const double left = i > 0 ? slab.cells[static_cast<std::size_t>(i - 1)] : left_halo;
        const double right =
            i < kCellsPerThread - 1 ? slab.cells[static_cast<std::size_t>(i + 1)] : right_halo;
        slab.next[static_cast<std::size_t>(i)] =
            slab.cells[static_cast<std::size_t>(i)] +
            kAlpha * (left + right - 2.0 * slab.cells[static_cast<std::size_t>(i)]);
      }
      slab.cells.swap(slab.next);
      step_barrier.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    for (int t = 0; t < kThreadsPerRank; ++t) threads.emplace_back(worker, r, t);
  }
  for (auto& th : threads) th.join();

  // Report the temperature profile coarse-grained; heat must decrease
  // monotonically (roughly) from the hot boundary.
  double checksum = 0.0;
  std::printf("halo_exchange: %d ranks x %d threads, %d cells/thread, %d iters\n", kRanks,
              kThreadsPerRank, kCellsPerThread, iters);
  for (int r = 0; r < kRanks; ++r) {
    for (int t = 0; t < kThreadsPerRank; ++t) {
      const Slab& slab = slabs[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
      double sum = 0.0;
      for (const double v : slab.cells) sum += v;
      checksum += sum;
      std::printf("  rank %d thread %d: mean temperature %.6f\n", r, t,
                  sum / kCellsPerThread);
    }
  }
  std::printf("halo_exchange: total heat %.6f %s\n", checksum,
              checksum > 0.0 && std::isfinite(checksum) ? "(OK)" : "(BROKEN)");
  return checksum > 0.0 && std::isfinite(checksum) ? 0 : 1;
}
