// Quickstart: the fairmpi public API in two minutes.
//
// A Universe is a simulated MPI job inside one process: here two ranks,
// each driven by one thread. We send a blocking message, a nonblocking
// batch, and a wildcard receive — then peek at the engine's software
// performance counters.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "fairmpi/core/universe.hpp"

int main() {
  fairmpi::Config cfg;           // defaults: 2 ranks, 1 CRI, serial progress
  cfg.num_instances = 2;         // give each rank two communication instances
  cfg.assignment = fairmpi::cri::Assignment::kDedicated;
  fairmpi::Universe uni(cfg);

  std::thread rank1([&] {
    auto world = uni.rank(1).world();

    // 1. Blocking receive of a blocking send.
    char greeting[32] = {};
    const fairmpi::Status st = world.recv(/*src=*/0, /*tag=*/1, greeting, sizeof greeting);
    std::printf("[rank 1] got \"%s\" (%zu bytes, tag %d, from rank %d)\n", greeting,
                st.size, st.tag, st.source);

    // 2. Nonblocking batch: post all receives up front, then wait.
    std::vector<fairmpi::Request> reqs(4);
    std::vector<int> values(4, -1);
    for (int i = 0; i < 4; ++i) {
      world.irecv(0, /*tag=*/10 + i, &values[static_cast<std::size_t>(i)], sizeof(int),
                  reqs[static_cast<std::size_t>(i)]);
    }
    for (auto& r : reqs) uni.rank(1).wait(r);
    std::printf("[rank 1] batch: %d %d %d %d\n", values[0], values[1], values[2],
                values[3]);

    // 3. Wildcards: take whatever comes next, from anyone, any tag.
    int surprise = 0;
    const fairmpi::Status any =
        world.recv(fairmpi::kAnySource, fairmpi::kAnyTag, &surprise, sizeof surprise);
    std::printf("[rank 1] wildcard got %d (tag %d)\n", surprise, any.tag);
  });

  auto world = uni.rank(0).world();
  world.send(1, 1, "hello, fairmpi", 15);
  for (int i = 0; i < 4; ++i) {
    const int v = i * i;
    world.send(1, 10 + i, &v, sizeof v);
  }
  const int surprise = 42;
  world.send(1, 777, &surprise, sizeof surprise);

  rank1.join();

  // The engine's SPCs (paper ref [9]) are always on:
  const auto spc = uni.aggregate_counters();
  std::printf("[spc] sent=%llu received=%llu unexpected=%llu out-of-sequence=%llu\n",
              static_cast<unsigned long long>(spc.get(fairmpi::spc::Counter::kMessagesSent)),
              static_cast<unsigned long long>(
                  spc.get(fairmpi::spc::Counter::kMessagesReceived)),
              static_cast<unsigned long long>(
                  spc.get(fairmpi::spc::Counter::kUnexpectedMessages)),
              static_cast<unsigned long long>(
                  spc.get(fairmpi::spc::Counter::kOutOfSequence)));
  std::puts("quickstart: OK");
  return 0;
}
